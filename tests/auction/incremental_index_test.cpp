// CandidateIndexCache contract (DESIGN.md §3h): a cached index carried
// across rounds answers every best-offer query BIT-identically to an index
// freshly built for the current snapshot.  The producer runs with a cache
// while verifiers rebuild from scratch, so any divergence is a consensus
// break — every comparison here is exact, no epsilons.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "auction/allocation.hpp"
#include "auction/candidate_index.hpp"
#include "auction/mechanism.hpp"
#include "auction/score_matrix.hpp"
#include "common/rng.hpp"
#include "ledger/market.hpp"
#include "test_helpers.hpp"
#include "trace/workload.hpp"

namespace decloud::auction {
namespace {

using test::OfferBuilder;
using test::RequestBuilder;

/// A market whose BlockScale is pinned by the REQUESTS: request 0 carries
/// the per-type maximum amount of every type in play, so offer churn never
/// changes the scale maxima and the cache's bitwise scale check passes
/// across rounds by construction.
MarketSnapshot pinned_scale_snapshot(std::uint64_t seed, std::size_t num_requests,
                                     std::size_t num_offers, std::uint64_t offer_id_base) {
  Rng rng(seed);
  const std::vector<ResourceId> pool = {0, 1, 2, 5};

  MarketSnapshot s;
  for (std::size_t i = 0; i < num_requests; ++i) {
    RequestBuilder b(i);
    b.submitted(static_cast<Time>(rng.uniform_int(0, 50)));
    for (const ResourceId k : pool) {
      // Request 0 pins the block maximum of every type; later bidders stay
      // strictly below it.
      b.resource(k, i == 0 ? 32.0 : rng.uniform(0.1, 8.0));
      b.significance(k, rng.uniform(0.05, 1.0));
    }
    const Time ws = static_cast<Time>(rng.uniform_int(0, 1000));
    const Time len = static_cast<Time>(rng.uniform_int(200, 4000));
    b.window(ws, ws + len);
    b.duration(static_cast<Seconds>(rng.uniform_int(50, len)));
    b.bid(rng.uniform(0.1, 5.0));
    Request r = b.build();
    if (rng.bernoulli(0.5)) r.reputation = rng.uniform(0.0, 1.0);
    s.requests.push_back(r);
  }
  for (std::size_t i = 0; i < num_offers; ++i) {
    OfferBuilder b(offer_id_base + i);
    b.submitted(static_cast<Time>(rng.uniform_int(0, 20)));
    for (const ResourceId k : pool) {
      if (rng.bernoulli(0.8)) b.resource(k, rng.uniform(0.5, 16.0));
    }
    const Time ws = static_cast<Time>(rng.uniform_int(0, 800));
    b.window(ws, ws + static_cast<Time>(rng.uniform_int(500, 8000)));
    b.bid(rng.uniform(0.1, 5.0));
    Offer o = b.build();
    if (rng.bernoulli(0.3)) o.min_reputation = rng.uniform(0.0, 1.0);
    s.offers.push_back(o);
  }
  return s;
}

/// Evolves `s` one round: drop `expire` offers (spread across the book),
/// mutate nothing else, append `arrive` fresh offers with new ids.
MarketSnapshot evolve(const MarketSnapshot& s, std::uint64_t seed, std::size_t expire,
                      std::size_t arrive, std::uint64_t id_base) {
  MarketSnapshot next;
  next.requests = s.requests;
  // Deterministic spread: drop `expire` offers one per stride.
  const std::size_t stride =
      expire == 0 ? SIZE_MAX : std::max<std::size_t>(1, s.offers.size() / expire);
  std::size_t dropped = 0;
  for (std::size_t o = 0; o < s.offers.size(); ++o) {
    if (dropped < expire && o % stride == 0) {
      ++dropped;
      continue;
    }
    next.offers.push_back(s.offers[o]);
  }
  const MarketSnapshot fresh = pinned_scale_snapshot(seed, 1, arrive, id_base);
  next.offers.insert(next.offers.end(), fresh.offers.begin(), fresh.offers.end());
  return next;
}

void expect_cache_matches_fresh(const MarketSnapshot& s, CandidateIndexCache& cache,
                                const AuctionConfig& cfg, const std::string& label) {
  const BlockScale scale(s.requests, s.offers);
  const ScoreMatrix scores(s, scale);
  (void)cache.prepare(s, scale, scores, cfg);

  const CandidateIndex fresh(s, scale, scores);
  CandidateIndex::Scratch cache_scratch;
  CandidateIndex::Scratch fresh_scratch;
  for (std::size_t r = 0; r < s.requests.size(); ++r) {
    ASSERT_EQ(fresh.best_offers(r, s, scores, cfg, fresh_scratch),
              cache.best_offers(r, s, scores, cfg, cache_scratch))
        << label << " r=" << r;
  }
}

TEST(IncrementalIndexTest, CarriedIndexBitIdenticalToFreshBuild) {
  const AuctionConfig cfg;
  CandidateIndexCache cache;
  MarketSnapshot s = pinned_scale_snapshot(7, 24, 120, /*offer_id_base=*/0);
  expect_cache_matches_fresh(s, cache, cfg, "round 0");
  ASSERT_EQ(cache.rebuilds(), 1u);  // first round always builds

  std::uint64_t id_base = 10'000;
  for (std::size_t round = 1; round <= 6; ++round) {
    s = evolve(s, 100 + round, /*expire=*/5, /*arrive=*/7, id_base);
    id_base += 1'000;
    expect_cache_matches_fresh(s, cache, cfg, "round " + std::to_string(round));
  }
  // The pinned scale and small deltas make every later round carry; if
  // this fails the test is not exercising the carry path at all.
  EXPECT_EQ(cache.rebuilds(), 1u);
  EXPECT_EQ(cache.reuses(), 6u);
}

TEST(IncrementalIndexTest, ScaleShiftForcesRebuildAndStaysExact) {
  const AuctionConfig cfg;
  CandidateIndexCache cache;
  MarketSnapshot s = pinned_scale_snapshot(11, 16, 100, 0);
  expect_cache_matches_fresh(s, cache, cfg, "base");

  // An offer outbidding the pinned maximum changes the BlockScale, which
  // changes EVERY normalized row — carrying would be unsound, so the
  // cache must rebuild (and stay exact either way).
  MarketSnapshot shifted = s;
  shifted.offers[0].resources.set(ResourceId{0}, 64.0);
  expect_cache_matches_fresh(shifted, cache, cfg, "shifted");
  EXPECT_EQ(cache.rebuilds(), 2u);
  EXPECT_EQ(cache.reuses(), 0u);
}

TEST(IncrementalIndexTest, DeltaThresholdForcesRebuild) {
  AuctionConfig cfg;
  cfg.residue.index_min_rebuild = 0;
  cfg.residue.index_rebuild_divisor = 1'000'000;  // proportional term ~ 0
  CandidateIndexCache cache;
  MarketSnapshot s = pinned_scale_snapshot(13, 8, 80, 0);
  expect_cache_matches_fresh(s, cache, cfg, "base");
  // Any churn now exceeds the (zero) delta allowance → rebuild.
  s = evolve(s, 99, /*expire=*/3, /*arrive=*/3, 50'000);
  expect_cache_matches_fresh(s, cache, cfg, "churned");
  EXPECT_EQ(cache.rebuilds(), 2u);
}

TEST(IncrementalIndexTest, MechanismRoundBytesMatchWithAndWithoutCache) {
  AuctionConfig cfg;
  cfg.threads = 1;
  cfg.scoring = ScoringPath::kPruned;
  const DeCloudAuction mechanism(cfg);

  CandidateIndexCache cache;
  MarketSnapshot s = pinned_scale_snapshot(17, 32, 140, 0);
  std::uint64_t id_base = 20'000;
  for (std::size_t round = 0; round < 5; ++round) {
    const std::string bare = round_result_json(mechanism.run(s, 42 + round));
    const std::string cached =
        round_result_json(mechanism.run(s, 42 + round, nullptr, &cache));
    ASSERT_EQ(bare, cached) << "round " << round;
    s = evolve(s, 300 + round, 4, 6, id_base);
    id_base += 1'000;
  }
  EXPECT_GE(cache.reuses(), 1u);
}

TEST(IncrementalIndexTest, OrchestratedMarketIdenticalWithAndWithoutReuse) {
  // End-to-end: the SAME submissions through two orchestrators, one
  // carrying its index across rounds, one rebuilding every block.  The
  // verifier inside each accepted round already replays the producer's
  // allocation from a fresh build, so acceptance itself checks the cache;
  // here we additionally require the lifetime stats to agree exactly.
  const auto run = [](bool reuse) {
    ledger::MarketConfig config;
    config.num_verifiers = 1;
    config.consensus.difficulty_bits = 4;
    config.reuse_candidate_index = reuse;
    config.consensus.auction.scoring = ScoringPath::kPruned;
    ledger::MarketOrchestrator market(config);

    trace::WorkloadConfig wc;
    wc.num_requests = 40;
    wc.num_offers = 80;
    Rng rng(5);
    const MarketSnapshot workload = trace::make_workload(wc, config.consensus.auction, rng);
    for (const auto& r : workload.requests) market.submit(r);
    for (const auto& o : workload.offers) market.submit(o);
    market.drain(/*max_rounds=*/8);
    return market.stats();
  };

  const ledger::MarketStats with_cache = run(true);
  const ledger::MarketStats without = run(false);
  EXPECT_EQ(with_cache.rounds, without.rounds);
  EXPECT_EQ(with_cache.requests_allocated, without.requests_allocated);
  EXPECT_EQ(with_cache.requests_abandoned, without.requests_abandoned);
  EXPECT_EQ(with_cache.offers_abandoned, without.offers_abandoned);
  EXPECT_EQ(with_cache.bids_carried, without.bids_carried);
  EXPECT_EQ(with_cache.total_welfare, without.total_welfare);    // bitwise
  EXPECT_EQ(with_cache.total_settled, without.total_settled);    // bitwise
  EXPECT_EQ(with_cache.allocation_latency, without.allocation_latency);
}

}  // namespace
}  // namespace decloud::auction

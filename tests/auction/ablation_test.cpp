// Ablation switches of the mechanism: mini-auction grouping on/off and
// reputation-gated admission.
#include <gtest/gtest.h>

#include "auction/mechanism.hpp"
#include "auction/feasibility.hpp"
#include "auction/verify.hpp"
#include "common/ensure.hpp"
#include "common/rng.hpp"
#include "test_helpers.hpp"

namespace decloud::auction {
namespace {

using test::OfferBuilder;
using test::RequestBuilder;

MarketSnapshot random_market(std::uint64_t seed, std::size_t n_req, std::size_t n_off) {
  Rng rng(seed);
  MarketSnapshot s;
  for (std::uint64_t i = 0; i < n_req; ++i) {
    s.requests.push_back(RequestBuilder(i)
                             .client(i / 2)
                             .cpu(rng.uniform(0.5, 3.0))
                             .memory(rng.uniform(1.0, 12.0))
                             .disk(rng.uniform(2.0, 60.0))
                             .bid(rng.uniform(0.1, 2.5))
                             .build());
  }
  for (std::uint64_t i = 0; i < n_off; ++i) {
    s.offers.push_back(OfferBuilder(i).provider(i / 2).bid(rng.uniform(0.3, 1.5)).build());
  }
  return s;
}

TEST(MiniAuctionAblation, UngroupedModeStillSatisfiesInvariants) {
  AuctionConfig cfg;
  cfg.group_mini_auctions = false;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const MarketSnapshot s = random_market(seed, 30, 12);
    const RoundResult r = DeCloudAuction(cfg).run(s, seed);
    const auto report = verify_invariants(s, r, cfg);
    EXPECT_TRUE(report.ok()) << (report.ok() ? "" : report.violations.front());
  }
}

TEST(MiniAuctionAblation, GroupingNeverLosesTradesOnAverage) {
  // The whole point of Algorithm 3: sharing one price across compatible
  // clusters amortizes trade reduction.  Across a sample of markets the
  // grouped variant must retain at least as many trades in total.
  AuctionConfig grouped;
  AuctionConfig ungrouped;
  ungrouped.group_mini_auctions = false;

  std::size_t grouped_matches = 0;
  std::size_t ungrouped_matches = 0;
  std::size_t grouped_reduced = 0;
  std::size_t ungrouped_reduced = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const MarketSnapshot s = random_market(seed * 101, 40, 16);
    const RoundResult rg = DeCloudAuction(grouped).run(s, seed);
    const RoundResult ru = DeCloudAuction(ungrouped).run(s, seed);
    grouped_matches += rg.matches.size();
    ungrouped_matches += ru.matches.size();
    grouped_reduced += rg.reduced_trades;
    ungrouped_reduced += ru.reduced_trades;
  }
  EXPECT_GE(grouped_matches, ungrouped_matches);
  EXPECT_LE(grouped_reduced, ungrouped_reduced);
}

TEST(MiniAuctionAblation, UngroupedIsDeterministicToo) {
  AuctionConfig cfg;
  cfg.group_mini_auctions = false;
  const MarketSnapshot s = random_market(3, 20, 8);
  const RoundResult a = DeCloudAuction(cfg).run(s, 9);
  const RoundResult b = DeCloudAuction(cfg).run(s, 9);
  ASSERT_EQ(a.matches.size(), b.matches.size());
  EXPECT_DOUBLE_EQ(a.welfare, b.welfare);
}

/// Segmented market: S regions with strict region resources, so clusters
/// form per region and the mini-auction machinery is genuinely exercised
/// (homogeneous markets collapse into one cluster; see
/// bench/ablation_miniauction.cpp).
MarketSnapshot segmented_market(std::size_t segments, std::uint64_t seed,
                                ResourceSchema& schema) {
  Rng rng(seed);
  MarketSnapshot s;
  std::uint64_t rid = 0;
  std::uint64_t oid = 0;
  for (std::size_t seg = 0; seg < segments; ++seg) {
    const auto region = schema.intern("region" + std::to_string(seg));
    const double level = 1.0 + 0.25 * static_cast<double>(seg);
    for (std::size_t i = 0; i < 3; ++i) {
      Offer o = OfferBuilder(oid).provider(oid).bid(level * rng.uniform(0.3, 0.8)).build();
      o.resources.set(region, 1.0);
      o.submitted = static_cast<Time>(oid++);
      s.offers.push_back(std::move(o));
    }
    for (std::size_t i = 0; i < 6; ++i) {
      Request r = RequestBuilder(rid).client(rid).bid(level * rng.uniform(0.02, 0.2)).build();
      r.resources.set(region, 1.0);
      r.submitted = static_cast<Time>(rid++);
      s.requests.push_back(std::move(r));
    }
  }
  return s;
}

/// Like segmented_market but with price levels so far apart that the
/// segments' clusters are price-INcompatible: each becomes its own root.
MarketSnapshot tiered_market(std::size_t segments, std::uint64_t seed, ResourceSchema& schema) {
  MarketSnapshot s = segmented_market(segments, seed, schema);
  // Rescale each segment's bids by 100^segment.
  for (auto& r : s.requests) {
    const std::size_t seg = r.id.value() / 6;
    double scale = 1.0;
    for (std::size_t k = 0; k < seg; ++k) scale *= 100.0;
    r.bid *= scale;
  }
  for (auto& o : s.offers) {
    const std::size_t seg = o.id.value() / 3;
    double scale = 1.0;
    for (std::size_t k = 0; k < seg; ++k) scale *= 100.0;
    o.bid *= scale;
  }
  return s;
}

TEST(MiniAuctionAblation, SegmentedMarketsFormManyClustersAndStaySound) {
  ResourceSchema schema;
  const MarketSnapshot s = tiered_market(6, 11, schema);
  AuctionConfig cfg;
  const RoundResult r = DeCloudAuction(cfg).run(s, 3);
  // Price-incompatible tiers clear in independent mini-auctions.
  EXPECT_GE(r.clearing_prices.size(), 2u);
  const auto report = verify_invariants(s, r, cfg);
  EXPECT_TRUE(report.ok()) << (report.ok() ? "" : report.violations.front());
}

TEST(MiniAuctionAblation, GroupingBeatsUngroupedOnSegmentedMarkets) {
  AuctionConfig grouped;
  AuctionConfig ungrouped;
  ungrouped.group_mini_auctions = false;
  std::size_t grouped_matches = 0;
  std::size_t ungrouped_matches = 0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    ResourceSchema schema;
    const MarketSnapshot s = segmented_market(8, seed, schema);
    grouped_matches += DeCloudAuction(grouped).run(s, seed).matches.size();
    ungrouped_matches += DeCloudAuction(ungrouped).run(s, seed).matches.size();
  }
  EXPECT_GT(grouped_matches, ungrouped_matches);
}

TEST(ReputationAdmission, LowReputationClientIsInfeasibleForGatedOffer) {
  Offer gated = OfferBuilder(0).bid(0.1).build();
  gated.min_reputation = 0.7;
  Request trusted = RequestBuilder(0).bid(2.0).build();
  trusted.reputation = 0.9;
  Request shady = RequestBuilder(1).client(1).bid(2.0).build();
  shady.reputation = 0.4;

  AuctionConfig cfg;
  EXPECT_TRUE(feasible(gated, trusted, cfg));
  EXPECT_FALSE(feasible(gated, shady, cfg));
}

TEST(ReputationAdmission, GatedOfferNeverMatchesShadyClient) {
  MarketSnapshot s;
  Request shady = RequestBuilder(0).bid(5.0).build();
  shady.reputation = 0.2;
  s.requests.push_back(shady);
  Offer gated = OfferBuilder(0).bid(0.1).build();
  gated.min_reputation = 0.5;
  s.offers.push_back(gated);
  Offer open_offer = OfferBuilder(1).provider(1).bid(0.2).build();  // accepts anyone
  s.offers.push_back(open_offer);
  Offer spare = OfferBuilder(2).provider(2).bid(0.3).build();
  s.offers.push_back(spare);

  const RoundResult r = DeCloudAuction{}.run(s, 4);
  for (const Match& m : r.matches) {
    EXPECT_NE(m.offer, 0u) << "gated offer matched a below-threshold client";
  }
  // The open offer can still serve it.
  ASSERT_EQ(r.matches.size(), 1u);
  EXPECT_EQ(r.matches[0].offer, 1u);
}

TEST(ReputationAdmission, DefaultsAdmitEveryone) {
  const Offer o = OfferBuilder(0).build();       // min_reputation = 0
  const Request r = RequestBuilder(0).build();   // reputation = 1
  EXPECT_TRUE(feasible(o, r, AuctionConfig{}));
}

TEST(ReputationAdmission, NegativeValuesRejectedByValidation) {
  Request r = RequestBuilder(0).build();
  r.reputation = -0.1;
  EXPECT_THROW(validate(r), precondition_error);
  Offer o = OfferBuilder(0).build();
  o.min_reputation = -1.0;
  EXPECT_THROW(validate(o), precondition_error);
}

}  // namespace
}  // namespace decloud::auction

// Shared builders for auction tests: terse construction of well-formed
// requests and offers.
#pragma once

#include <vector>

#include "auction/bid.hpp"
#include "auction/resource.hpp"

namespace decloud::auction::test {

/// Fluent request builder with sane defaults: 1 cpu / 4 GB / 10 GB, window
/// [0, 7200], duration 3600, bid 1.0.
class RequestBuilder {
 public:
  explicit RequestBuilder(std::uint64_t id) {
    r_.id = RequestId(id);
    r_.client = ClientId(id);
    r_.submitted = static_cast<Time>(id);
    r_.resources.set(ResourceSchema::kCpu, 1.0);
    r_.resources.set(ResourceSchema::kMemory, 4.0);
    r_.resources.set(ResourceSchema::kDisk, 10.0);
    r_.window_start = 0;
    r_.window_end = 7200;
    r_.duration = 3600;
    r_.bid = 1.0;
  }

  RequestBuilder& client(std::uint64_t c) { r_.client = ClientId(c); return *this; }
  RequestBuilder& submitted(Time t) { r_.submitted = t; return *this; }
  RequestBuilder& cpu(double v) { r_.resources.set(ResourceSchema::kCpu, v); return *this; }
  RequestBuilder& memory(double v) { r_.resources.set(ResourceSchema::kMemory, v); return *this; }
  RequestBuilder& disk(double v) { r_.resources.set(ResourceSchema::kDisk, v); return *this; }
  RequestBuilder& resource(ResourceId k, double v) { r_.resources.set(k, v); return *this; }
  RequestBuilder& significance(ResourceId k, double s) { r_.significance.set(k, s); return *this; }
  RequestBuilder& window(Time lo, Time hi) { r_.window_start = lo; r_.window_end = hi; return *this; }
  RequestBuilder& duration(Seconds d) { r_.duration = d; return *this; }
  RequestBuilder& bid(Money b) { r_.bid = b; return *this; }
  RequestBuilder& location(double x, double y) { r_.location = Location{x, y}; return *this; }

  [[nodiscard]] Request build() const { return r_; }
  operator Request() const { return r_; }  // NOLINT(google-explicit-constructor)

 private:
  Request r_;
};

/// Fluent offer builder with defaults: 4 cpu / 16 GB / 100 GB, window
/// [0, 86400], bid 1.0.
class OfferBuilder {
 public:
  explicit OfferBuilder(std::uint64_t id) {
    o_.id = OfferId(id);
    o_.provider = ProviderId(id);
    o_.submitted = static_cast<Time>(id);
    o_.resources.set(ResourceSchema::kCpu, 4.0);
    o_.resources.set(ResourceSchema::kMemory, 16.0);
    o_.resources.set(ResourceSchema::kDisk, 100.0);
    o_.window_start = 0;
    o_.window_end = 86400;
    o_.bid = 1.0;
  }

  OfferBuilder& provider(std::uint64_t p) { o_.provider = ProviderId(p); return *this; }
  OfferBuilder& submitted(Time t) { o_.submitted = t; return *this; }
  OfferBuilder& cpu(double v) { o_.resources.set(ResourceSchema::kCpu, v); return *this; }
  OfferBuilder& memory(double v) { o_.resources.set(ResourceSchema::kMemory, v); return *this; }
  OfferBuilder& disk(double v) { o_.resources.set(ResourceSchema::kDisk, v); return *this; }
  OfferBuilder& resource(ResourceId k, double v) { o_.resources.set(k, v); return *this; }
  OfferBuilder& window(Time lo, Time hi) { o_.window_start = lo; o_.window_end = hi; return *this; }
  OfferBuilder& bid(Money b) { o_.bid = b; return *this; }
  OfferBuilder& location(double x, double y) { o_.location = Location{x, y}; return *this; }

  [[nodiscard]] Offer build() const { return o_; }
  operator Offer() const { return o_; }  // NOLINT(google-explicit-constructor)

 private:
  Offer o_;
};

}  // namespace decloud::auction::test

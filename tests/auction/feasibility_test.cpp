#include "auction/feasibility.hpp"

#include <gtest/gtest.h>

#include "common/ensure.hpp"
#include "test_helpers.hpp"

namespace decloud::auction {
namespace {

using test::OfferBuilder;
using test::RequestBuilder;

TEST(WindowCovers, FullCoverage) {
  const Offer o = OfferBuilder(1).window(0, 1000).build();
  EXPECT_TRUE(window_covers(o, RequestBuilder(1).window(100, 900).duration(100).build()));
  EXPECT_TRUE(window_covers(o, RequestBuilder(1).window(0, 1000).duration(100).build()));
}

TEST(WindowCovers, PartialOverlapFails) {
  const Offer o = OfferBuilder(1).window(100, 1000).build();
  // Starts before the offer becomes available (constraint 10).
  EXPECT_FALSE(window_covers(o, RequestBuilder(1).window(50, 900).duration(100).build()));
  // Ends after the offer expires (constraint 11).
  EXPECT_FALSE(window_covers(o, RequestBuilder(1).window(200, 1100).duration(100).build()));
}

TEST(ResourcesSufficient, StrictResourcesNeedFullAmount) {
  const Offer o = OfferBuilder(1).cpu(4).memory(16).disk(100).build();
  EXPECT_TRUE(resources_sufficient(o, RequestBuilder(1).cpu(4).build(), 1.0));
  EXPECT_FALSE(resources_sufficient(o, RequestBuilder(1).cpu(4.1).build(), 1.0));
  // Strict resources ignore market flexibility.
  EXPECT_FALSE(resources_sufficient(o, RequestBuilder(1).cpu(4.1).build(), 0.5));
}

TEST(ResourcesSufficient, FlexibleResourcesScaleWithMarketFlexibility) {
  const Offer o = OfferBuilder(1).cpu(4).build();
  const Request r =
      RequestBuilder(1).cpu(5.0).significance(ResourceSchema::kCpu, 0.5).build();
  EXPECT_FALSE(resources_sufficient(o, r, 1.0));  // inflexible: needs full 5
  EXPECT_TRUE(resources_sufficient(o, r, 0.8));   // 0.8 × 5 = 4 ≤ 4
  EXPECT_FALSE(resources_sufficient(o, r, 0.81));
}

TEST(ResourcesSufficient, MissingResourceTypeFails) {
  ResourceSchema schema;
  const ResourceId sgx = schema.intern("sgx");
  const Offer o = OfferBuilder(1).build();  // no sgx
  const Request r = RequestBuilder(1).resource(sgx, 1.0).build();
  EXPECT_FALSE(resources_sufficient(o, r, 1.0));
}

TEST(ResourcesSufficient, OfferExtraTypesIgnored) {
  ResourceSchema schema;
  const ResourceId gpu = schema.intern("gpu");
  const Offer o = OfferBuilder(1).resource(gpu, 8.0).build();
  EXPECT_TRUE(resources_sufficient(o, RequestBuilder(1).build(), 1.0));
}

TEST(ResourcesSufficient, FlexibilityPreconditions) {
  const Offer o = OfferBuilder(1).build();
  const Request r = RequestBuilder(1).build();
  EXPECT_THROW(resources_sufficient(o, r, 0.0), precondition_error);
  EXPECT_THROW(resources_sufficient(o, r, 1.1), precondition_error);
}

TEST(Feasible, CombinesWindowAndResources) {
  AuctionConfig cfg;
  const Offer o = OfferBuilder(1).window(0, 1000).cpu(2).build();
  EXPECT_TRUE(feasible(o, RequestBuilder(1).window(0, 500).duration(100).cpu(2).build(), cfg));
  EXPECT_FALSE(feasible(o, RequestBuilder(1).window(0, 2000).duration(100).cpu(2).build(), cfg));
  EXPECT_FALSE(feasible(o, RequestBuilder(1).window(0, 500).duration(100).cpu(3).build(), cfg));
}

}  // namespace
}  // namespace decloud::auction

#include "auction/qom.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "test_helpers.hpp"

namespace decloud::auction {
namespace {

using test::OfferBuilder;
using test::RequestBuilder;

TEST(BlockScale, TracksPerResourceMaxAcrossBothSides) {
  const std::vector<Request> requests = {RequestBuilder(1).cpu(2).memory(8).build()};
  const std::vector<Offer> offers = {OfferBuilder(1).cpu(16).memory(4).build()};
  const BlockScale scale(requests, offers);
  EXPECT_DOUBLE_EQ(scale.max_of(ResourceSchema::kCpu), 16.0);    // offer wins
  EXPECT_DOUBLE_EQ(scale.max_of(ResourceSchema::kMemory), 8.0);  // request wins
  EXPECT_DOUBLE_EQ(scale.max_of(999), 0.0);                      // unseen type
}

TEST(BlockScale, NormalizedDividesByMax) {
  const std::vector<Request> requests = {RequestBuilder(1).cpu(2).build()};
  const std::vector<Offer> offers = {OfferBuilder(1).cpu(8).build()};
  const BlockScale scale(requests, offers);
  EXPECT_DOUBLE_EQ(scale.normalized(ResourceSchema::kCpu, 4.0), 0.5);
  EXPECT_DOUBLE_EQ(scale.normalized(999, 4.0), 0.0);  // max 0 → 0
}

TEST(QualityOfMatch, HandComputedValue) {
  // One common resource (cpu).  max = 8 → ρ'_r = 0.25, ρ'_o = 1.0.
  // q = σ · ρ'_o / ((ρ'_o − ρ'_r)² + 1) = 1 · 1 / (0.5625 + 1).
  const Request r = RequestBuilder(1).cpu(2).build();
  const Offer o = OfferBuilder(1).cpu(8).build();
  // Restrict to cpu by building a scale where only cpu is shared.
  Request r_only = r;
  r_only.resources = ResourceVector{};
  r_only.resources.set(ResourceSchema::kCpu, 2.0);
  Offer o_only = o;
  o_only.resources = ResourceVector{};
  o_only.resources.set(ResourceSchema::kCpu, 8.0);
  const BlockScale scale({r_only}, {o_only});
  EXPECT_NEAR(quality_of_match(r_only, o_only, scale), 1.0 / 1.5625, 1e-12);
}

TEST(QualityOfMatch, ZeroWhenNoCommonTypes) {
  ResourceSchema schema;
  const ResourceId gpu = schema.intern("gpu");
  Request r = RequestBuilder(1).build();
  r.resources = ResourceVector{};
  r.resources.set(gpu, 1.0);
  const Offer o = OfferBuilder(1).build();
  const BlockScale scale({r}, {o});
  EXPECT_DOUBLE_EQ(quality_of_match(r, o, scale), 0.0);
}

TEST(QualityOfMatch, BalancedFitBeatsLopsidedCapacity) {
  // The distance term of Eq. 18 punishes shape mismatch: an offer matching
  // the request's profile outscores one that is big on one axis but
  // starved on another.
  Request r = RequestBuilder(1).build();
  r.resources = ResourceVector{};
  r.resources.set(ResourceSchema::kCpu, 8.0);
  r.resources.set(ResourceSchema::kMemory, 16.0);
  Offer balanced = OfferBuilder(1).build();
  balanced.resources = ResourceVector{};
  balanced.resources.set(ResourceSchema::kCpu, 8.0);
  balanced.resources.set(ResourceSchema::kMemory, 16.0);
  Offer lopsided = OfferBuilder(2).build();
  lopsided.resources = ResourceVector{};
  lopsided.resources.set(ResourceSchema::kCpu, 16.0);  // double the cpu…
  lopsided.resources.set(ResourceSchema::kMemory, 2.0);  // …but starved on RAM
  const BlockScale scale({r}, {balanced, lopsided});
  EXPECT_GT(quality_of_match(r, balanced, scale), quality_of_match(r, lopsided, scale));
}

TEST(QualityOfMatch, GravityCanFavorLargeDistantOffers) {
  // Eq. 18's numerator rewards sheer size: a machine-sized offer can
  // outscore an exact-fit offer that is small on the normalized scale.
  // This is by design (large devices attract many requests → clusters).
  const Request r = RequestBuilder(1).cpu(4).memory(4).disk(10).build();
  const Offer exact = OfferBuilder(1).cpu(4).memory(4).disk(10).build();
  const Offer huge = OfferBuilder(2).cpu(16).memory(64).disk(500).build();
  const BlockScale scale({r}, {exact, huge});
  EXPECT_GT(quality_of_match(r, huge, scale), quality_of_match(r, exact, scale));
}

TEST(QualityOfMatch, GravityFavorsLargerOfferAtEqualDistance) {
  // Two offers equidistant from the request in one resource; the larger
  // one exerts more "gravity" (ρ'_o in the numerator).
  Request r = RequestBuilder(1).build();
  r.resources = ResourceVector{};
  r.resources.set(ResourceSchema::kCpu, 6.0);
  Offer small = OfferBuilder(1).build();
  small.resources = ResourceVector{};
  small.resources.set(ResourceSchema::kCpu, 4.0);
  Offer large = OfferBuilder(2).build();
  large.resources = ResourceVector{};
  large.resources.set(ResourceSchema::kCpu, 8.0);
  const BlockScale scale({r}, {small, large});
  EXPECT_GT(quality_of_match(r, large, scale), quality_of_match(r, small, scale));
}

TEST(QualityOfMatch, SignificanceWeightsResources) {
  // Down-weighting a mismatched resource raises the score.
  Request strict = RequestBuilder(1).cpu(1).memory(16).build();
  Request relaxed = RequestBuilder(2).cpu(1).memory(16)
                        .significance(ResourceSchema::kMemory, 0.1).build();
  const Offer o = OfferBuilder(1).cpu(1).memory(16).build();
  const BlockScale scale({strict, relaxed}, {o});
  // Same geometry, but relaxed scales the memory term by 0.1.
  EXPECT_LT(quality_of_match(relaxed, o, scale), quality_of_match(strict, o, scale));
}

TEST(AugmentWithProximity, AddsProximityResource) {
  ResourceSchema schema;
  MarketSnapshot snapshot;
  snapshot.requests.push_back(RequestBuilder(1).location(0.0, 0.0).build());
  snapshot.requests.push_back(RequestBuilder(2).build());  // no location
  snapshot.offers.push_back(OfferBuilder(1).location(3.0, 4.0).build());

  augment_with_proximity(snapshot, schema, Location{0.0, 0.0}, 0.5);
  const auto prox = schema.find("proximity");
  ASSERT_TRUE(prox.has_value());
  // Request at the origin: proximity 1; offer at distance 5: 1/6.
  EXPECT_DOUBLE_EQ(snapshot.requests[0].resources.get(*prox), 1.0);
  EXPECT_DOUBLE_EQ(snapshot.requests[0].significance.get(*prox), 0.5);
  EXPECT_FALSE(snapshot.requests[1].resources.has(*prox));
  EXPECT_NEAR(snapshot.offers[0].resources.get(*prox), 1.0 / 6.0, 1e-12);
}

}  // namespace
}  // namespace decloud::auction

// End-to-end integration: trace-driven workloads through the full
// decentralized pipeline — sealed submission, PoW, key disclosure,
// allocation, collective verification, settlement and agreements —
// validating the paper-level economics on what actually landed on chain.
#include <gtest/gtest.h>

#include "auction/verify.hpp"
#include "ledger/protocol.hpp"
#include "sim/simulation.hpp"
#include "trace/kl_shaper.hpp"
#include "trace/workload.hpp"

namespace decloud {
namespace {

TEST(EndToEnd, TraceWorkloadThroughInProcessProtocol) {
  ledger::ConsensusParams params{.difficulty_bits = 8};
  ledger::LedgerProtocol protocol(params);
  Rng rng(42);
  ledger::Participant clients(rng);
  ledger::Participant providers(rng);

  trace::WorkloadConfig wc;
  wc.num_requests = 40;
  wc.num_offers = 20;
  const auto snapshot = trace::make_workload(wc, params.auction, rng);
  for (const auto& r : snapshot.requests) {
    protocol.mempool().submit(clients.submit_request(r, rng));
  }
  for (const auto& o : snapshot.offers) {
    protocol.mempool().submit(providers.submit_offer(o, rng));
  }

  const std::vector<ledger::Miner> verifiers(3, ledger::Miner(params));
  const auto outcome = protocol.run_round({&clients, &providers}, verifiers, 1000);

  ASSERT_TRUE(outcome.block_accepted);
  EXPECT_EQ(outcome.snapshot.requests.size(), 40u);
  EXPECT_FALSE(outcome.result.matches.empty());
  EXPECT_TRUE(auction::verify_invariants(outcome.snapshot, outcome.result, params.auction).ok());
  EXPECT_NEAR(outcome.result.total_payments, outcome.result.total_revenue, 1e-9);
}

TEST(EndToEnd, MultiRoundEconomicsOverSimulatedNetwork) {
  sim::SimulationConfig sc;
  sc.num_miners = 3;
  sc.num_participants = 6;
  sc.consensus.difficulty_bits = 8;
  sim::Simulation simulation(sc);

  Money total_welfare = 0.0;
  std::size_t total_matches = 0;
  for (std::size_t round = 0; round < 3; ++round) {
    trace::WorkloadConfig wc;
    wc.num_requests = 20;
    wc.num_offers = 10;
    Rng rng(100 + round);
    const auto snap = trace::make_workload(wc, sc.consensus.auction, rng);
    for (std::size_t i = 0; i < snap.requests.size(); ++i) {
      simulation.participant(i % simulation.num_participants()).enqueue_request(snap.requests[i]);
    }
    for (std::size_t i = 0; i < snap.offers.size(); ++i) {
      simulation.participant(i % simulation.num_participants()).enqueue_offer(snap.offers[i]);
    }
    const auto stats = simulation.run_round(round % sc.num_miners);
    ASSERT_TRUE(stats.accepted) << "round " << round;
    EXPECT_TRUE(
        auction::verify_invariants(stats.snapshot, stats.result, sc.consensus.auction).ok());
    total_welfare += stats.result.welfare;
    total_matches += stats.result.matches.size();
  }
  EXPECT_GT(total_welfare, 0.0);
  EXPECT_GT(total_matches, 0u);
  EXPECT_EQ(simulation.miner(0).chain().height(), 3u);
}

TEST(EndToEnd, WelfareRatioInPaperBallpark) {
  // The headline claim: DeCloud attains 70 %+ of the non-truthful
  // benchmark welfare (Fig. 5b).  The paper reports the Loess trend of the
  // ratio; individual rounds scatter below it (a demand-surplus round pays
  // the full price of the verifiable random exclusion of requests,
  // Section IV-D), so the assertion targets the mean with a loose floor
  // per round.
  auction::AuctionConfig truthful;
  auction::AuctionConfig bench;
  bench.truthful = false;

  double sum_ratio = 0.0;
  std::size_t rounds = 0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    trace::WorkloadConfig wc;
    wc.num_requests = 150;
    wc.num_offers = 75;
    Rng rng(seed);
    const auto snap = trace::make_workload(wc, truthful, rng);
    const auto rt = auction::DeCloudAuction(truthful).run(snap, seed);
    const auto rb = auction::DeCloudAuction(bench).run(snap, seed);
    if (rb.welfare > 1e-9) {
      const double ratio = rt.welfare / rb.welfare;
      EXPECT_GE(ratio, 0.50) << "seed " << seed;
      sum_ratio += ratio;
      ++rounds;
    }
  }
  ASSERT_GT(rounds, 0u);
  EXPECT_GE(sum_ratio / static_cast<double>(rounds), 0.70);
}

TEST(EndToEnd, FlexibilityNeverHurtsSatisfaction) {
  // Fig. 5d's qualitative claim on divergent markets: 80 % flexibility
  // yields at least the satisfaction of the inflexible market.
  for (const double lambda : {0.3, 0.6, 0.9}) {
    trace::KlShaperConfig kc;
    kc.num_requests = 150;
    kc.num_offers = 150;

    auction::AuctionConfig inflexible;
    inflexible.best_offer_ratio = 0.2;
    inflexible.max_best_offers = 32;
    auction::AuctionConfig flexible = inflexible;
    flexible.flexibility = 0.8;

    double sat_inflex = 0.0;
    double sat_flex = 0.0;
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      Rng r1(seed);
      const auto m1 = trace::make_shaped_market(kc, inflexible, lambda, r1);
      sat_inflex += auction::DeCloudAuction(inflexible)
                        .run(m1.snapshot, seed)
                        .satisfaction(m1.snapshot.requests.size());
      Rng r2(seed);
      const auto m2 = trace::make_shaped_market(kc, flexible, lambda, r2);
      sat_flex += auction::DeCloudAuction(flexible)
                      .run(m2.snapshot, seed)
                      .satisfaction(m2.snapshot.requests.size());
    }
    EXPECT_GE(sat_flex, sat_inflex - 0.02) << "lambda " << lambda;
  }
}

TEST(EndToEnd, ReducedTradesSmallAndShrinkingWithMarketSize) {
  // Fig. 5c: the reduced-trade fraction stays small and trends down as the
  // market grows.
  auction::AuctionConfig cfg;
  double small_ratio = 0.0;
  double large_ratio = 0.0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    trace::WorkloadConfig small;
    small.num_requests = 40;
    small.num_offers = 20;
    Rng r1(seed);
    const auto s1 = trace::make_workload(small, cfg, r1);
    small_ratio += auction::DeCloudAuction(cfg).run(s1, seed).reduced_trade_ratio();

    trace::WorkloadConfig large;
    large.num_requests = 300;
    large.num_offers = 150;
    Rng r2(seed);
    const auto s2 = trace::make_workload(large, cfg, r2);
    large_ratio += auction::DeCloudAuction(cfg).run(s2, seed).reduced_trade_ratio();
  }
  EXPECT_LE(large_ratio, small_ratio + 1e-9);
  EXPECT_LE(large_ratio / 5.0, 0.10);  // well under 10 % on large markets
}

}  // namespace
}  // namespace decloud

// The umbrella header must compile standalone and expose the whole API.
#include "decloud.hpp"

#include <gtest/gtest.h>

namespace decloud {
namespace {

TEST(Umbrella, ExposesTheFullApi) {
  // One symbol from every layer proves the header pulled everything in.
  const auction::AuctionConfig cfg;
  EXPECT_TRUE(cfg.truthful);
  EXPECT_EQ(auction::ResourceSchema::kCpu, 0u);
  EXPECT_EQ(trace::m5_family().size(), 4u);
  const ledger::ChallengeConfig challenge;
  EXPECT_EQ(challenge.num_challengers, 2u);
  const sim::LatencyConfig latency;
  EXPECT_EQ(latency.base_ms, 20);
  Rng rng(1);
  EXPECT_NE(rng.next_u64(), 0u);
}

}  // namespace
}  // namespace decloud

#include "stats/kl_divergence.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <vector>

#include "common/ensure.hpp"

namespace decloud::stats {
namespace {

TEST(KlDivergence, IdenticalDistributionsGiveZero) {
  const std::vector<double> p = {0.25, 0.25, 0.25, 0.25};
  EXPECT_NEAR(kl_divergence(p, p), 0.0, 1e-9);
}

TEST(KlDivergence, KnownValue) {
  // KL([1,0] ‖ [0.5,0.5]) = ln 2 (up to smoothing).
  const std::vector<double> p = {1.0, 0.0};
  const std::vector<double> q = {0.5, 0.5};
  EXPECT_NEAR(kl_divergence(p, q), std::numbers::ln2, 1e-6);
}

TEST(KlDivergence, IsAsymmetric) {
  const std::vector<double> p = {0.9, 0.1};
  const std::vector<double> q = {0.5, 0.5};
  EXPECT_NE(kl_divergence(p, q), kl_divergence(q, p));
}

TEST(KlDivergence, SmoothingPreventsInfinity) {
  // q has zero mass where p doesn't: raw KL is infinite; smoothing bounds it.
  const std::vector<double> p = {0.5, 0.5};
  const std::vector<double> q = {1.0, 0.0};
  const double kld = kl_divergence(p, q);
  EXPECT_TRUE(std::isfinite(kld));
  EXPECT_GT(kld, 1.0);  // still clearly large
}

TEST(KlDivergence, NonNegative) {
  const std::vector<double> p = {0.2, 0.3, 0.5};
  const std::vector<double> q = {0.5, 0.3, 0.2};
  EXPECT_GE(kl_divergence(p, q), 0.0);
  EXPECT_GE(kl_divergence(q, p), 0.0);
}

TEST(KlDivergence, UnnormalizedInputsAccepted) {
  // Counts work as well as probabilities.
  const std::vector<double> p = {10.0, 30.0};
  const std::vector<double> q = {1.0, 3.0};
  EXPECT_NEAR(kl_divergence(p, q), 0.0, 1e-6);
}

TEST(KlDivergence, SizeMismatchThrows) {
  const std::vector<double> p = {1.0};
  const std::vector<double> q = {0.5, 0.5};
  EXPECT_THROW(kl_divergence(p, q), precondition_error);
}

TEST(KlDivergence, EmptyThrows) {
  const std::vector<double> e;
  EXPECT_THROW(kl_divergence(e, e), precondition_error);
}

TEST(JsDivergence, SymmetricAndBounded) {
  const std::vector<double> p = {1.0, 0.0, 0.0};
  const std::vector<double> q = {0.0, 0.0, 1.0};
  const double js = js_divergence(p, q);
  EXPECT_NEAR(js, js_divergence(q, p), 1e-9);
  EXPECT_LE(js, std::numbers::ln2 + 1e-6);  // maximal for disjoint support
  EXPECT_NEAR(js, std::numbers::ln2, 1e-3);
}

TEST(JsDivergence, ZeroForIdentical) {
  const std::vector<double> p = {0.3, 0.7};
  EXPECT_NEAR(js_divergence(p, p), 0.0, 1e-9);
}

TEST(Similarity, OneForIdenticalZeroFloorForDistant) {
  const std::vector<double> p = {0.25, 0.25, 0.25, 0.25};
  EXPECT_NEAR(similarity(p, p), 1.0, 1e-6);
  const std::vector<double> a = {1.0, 0.0, 0.0, 0.0};
  const std::vector<double> b = {0.0, 0.0, 0.0, 1.0};
  EXPECT_EQ(similarity(a, b), 0.0);  // clamped at zero
}

TEST(Similarity, MonotoneInMixing) {
  // Walking q away from p decreases similarity.
  const std::vector<double> p = {0.7, 0.2, 0.1};
  double prev = 2.0;
  for (const double lam : {0.0, 0.3, 0.6, 0.9}) {
    std::vector<double> q(3);
    const std::vector<double> far = {0.0, 0.1, 0.9};
    for (int i = 0; i < 3; ++i) {
      q[static_cast<std::size_t>(i)] = (1 - lam) * p[static_cast<std::size_t>(i)] +
                                       lam * far[static_cast<std::size_t>(i)];
    }
    const double s = similarity(p, q);
    EXPECT_LT(s, prev);
    prev = s;
  }
}

}  // namespace
}  // namespace decloud::stats

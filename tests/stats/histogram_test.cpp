#include "stats/histogram.hpp"

#include <gtest/gtest.h>

#include "common/ensure.hpp"

namespace decloud::stats {
namespace {

TEST(Histogram, BinsSamplesUniformly) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 10; ++i) h.add(static_cast<double>(i) + 0.5);
  for (std::size_t b = 0; b < 10; ++b) EXPECT_EQ(h.count(b), 1.0) << "bin " << b;
  EXPECT_EQ(h.total(), 10.0);
}

TEST(Histogram, ClampsOutOfRangeSamples) {
  Histogram h(0.0, 1.0, 4);
  h.add(-5.0);
  h.add(100.0);
  EXPECT_EQ(h.count(0), 1.0);
  EXPECT_EQ(h.count(3), 1.0);
  EXPECT_EQ(h.total(), 2.0);
}

TEST(Histogram, UpperBoundFallsInLastBin) {
  Histogram h(0.0, 1.0, 4);
  h.add(1.0);  // hi itself clamps into the last bin
  EXPECT_EQ(h.count(3), 1.0);
}

TEST(Histogram, WeightedSamples) {
  Histogram h(0.0, 1.0, 2);
  h.add(0.25, 3.0);
  h.add(0.75, 1.0);
  EXPECT_EQ(h.count(0), 3.0);
  EXPECT_EQ(h.count(1), 1.0);
  const auto d = h.to_distribution();
  EXPECT_DOUBLE_EQ(d[0], 0.75);
  EXPECT_DOUBLE_EQ(d[1], 0.25);
}

TEST(Histogram, NegativeWeightRejected) {
  Histogram h(0.0, 1.0, 2);
  EXPECT_THROW(h.add(0.5, -1.0), precondition_error);
}

TEST(Histogram, EmptyDistributionIsUniform) {
  Histogram h(0.0, 1.0, 4);
  const auto d = h.to_distribution();
  for (const double p : d) EXPECT_DOUBLE_EQ(p, 0.25);
}

TEST(Histogram, InvalidConstructionRejected) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), precondition_error);
  EXPECT_THROW(Histogram(2.0, 1.0, 4), precondition_error);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), precondition_error);
}

TEST(Histogram, AddAllMatchesLoop) {
  Histogram a(0.0, 1.0, 4);
  Histogram b(0.0, 1.0, 4);
  const std::vector<double> samples = {0.1, 0.3, 0.6, 0.9, 0.95};
  a.add_all(samples);
  for (const double s : samples) b.add(s);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(a.count(i), b.count(i));
}

TEST(Histogram, MergeAccumulatesBinWise) {
  Histogram a(0.0, 1.0, 4);
  Histogram b(0.0, 1.0, 4);
  a.add(0.1);
  a.add(0.6, 2.0);
  b.add(0.6);
  b.add(0.9);
  a.merge(b);
  EXPECT_EQ(a.count(0), 1.0);
  EXPECT_EQ(a.count(2), 3.0);
  EXPECT_EQ(a.count(3), 1.0);
  EXPECT_EQ(a.total(), 5.0);
  EXPECT_DOUBLE_EQ(a.sum(), 0.1 + 1.2 + 0.6 + 0.9);
}

TEST(Histogram, MergeRejectsMismatchedLayout) {
  // Merging histograms with different bucket layouts would silently land
  // counts in bins with different meanings — the obs registry relies on
  // this throwing instead (regression for the cross-shard metrics merge).
  Histogram a(0.0, 1.0, 4);
  EXPECT_THROW(a.merge(Histogram(0.5, 1.0, 4)), precondition_error);  // lo differs
  EXPECT_THROW(a.merge(Histogram(0.0, 2.0, 4)), precondition_error);  // hi differs
  EXPECT_THROW(a.merge(Histogram(0.0, 1.0, 8)), precondition_error);  // bins differ
}

TEST(Histogram, MergeWithEmptyIsIdentity) {
  Histogram a(0.0, 1.0, 2);
  a.add(0.25, 3.0);
  a.merge(Histogram(0.0, 1.0, 2));
  EXPECT_EQ(a.count(0), 3.0);
  EXPECT_EQ(a.total(), 3.0);
  EXPECT_DOUBLE_EQ(a.sum(), 0.75);
}

TEST(Normalize, SumsToOne) {
  const std::vector<double> w = {1.0, 2.0, 7.0};
  const auto d = normalize(w);
  EXPECT_DOUBLE_EQ(d[0] + d[1] + d[2], 1.0);
  EXPECT_DOUBLE_EQ(d[2], 0.7);
}

TEST(Normalize, AllZeroGivesUniform) {
  const std::vector<double> w = {0.0, 0.0, 0.0, 0.0};
  const auto d = normalize(w);
  for (const double p : d) EXPECT_DOUBLE_EQ(p, 0.25);
}

TEST(Normalize, EmptyGivesEmpty) { EXPECT_TRUE(normalize(std::vector<double>{}).empty()); }

}  // namespace
}  // namespace decloud::stats

#include "stats/loess.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/ensure.hpp"
#include "common/rng.hpp"

namespace decloud::stats {
namespace {

TEST(Loess, EmptyInputGivesEmptyOutput) {
  EXPECT_TRUE(loess(std::vector<double>{}, std::vector<double>{}).empty());
}

TEST(Loess, ConstantDataStaysConstant) {
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 20; ++i) {
    x.push_back(static_cast<double>(i));
    y.push_back(5.0);
  }
  for (const auto& pt : loess(x, y)) EXPECT_NEAR(pt.y, 5.0, 1e-9);
}

TEST(Loess, RecoversLinearTrendExactly) {
  // Local linear regression reproduces a line exactly.
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 30; ++i) {
    x.push_back(static_cast<double>(i));
    y.push_back(2.0 * static_cast<double>(i) + 1.0);
  }
  for (const auto& pt : loess(x, y, {.span = 0.4})) {
    EXPECT_NEAR(pt.y, 2.0 * pt.x + 1.0, 1e-6);
  }
}

TEST(Loess, SmoothsNoiseTowardTrend) {
  Rng rng(1);
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 200; ++i) {
    x.push_back(static_cast<double>(i));
    y.push_back(0.5 * static_cast<double>(i) + rng.normal(0.0, 5.0));
  }
  double max_err = 0.0;
  for (const auto& pt : loess(x, y, {.span = 0.3})) {
    max_err = std::max(max_err, std::abs(pt.y - 0.5 * pt.x));
  }
  // Interior errors shrink well below the noise σ; edges are looser.
  EXPECT_LT(max_err, 5.0);
}

TEST(Loess, GridOptionControlsEvaluationPoints) {
  std::vector<double> x = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<double> y = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  const auto out = loess(x, y, {.span = 0.5, .grid_points = 5});
  ASSERT_EQ(out.size(), 5u);
  EXPECT_DOUBLE_EQ(out.front().x, 0.0);
  EXPECT_DOUBLE_EQ(out.back().x, 9.0);
}

TEST(Loess, UnsortedInputHandled) {
  const std::vector<double> x = {5, 1, 3, 2, 4, 0};
  const std::vector<double> y = {10, 2, 6, 4, 8, 0};  // y = 2x
  for (const auto& pt : loess(x, y, {.span = 0.6})) EXPECT_NEAR(pt.y, 2.0 * pt.x, 1e-6);
}

TEST(Loess, DegenerateAllSameXFallsBackToMean) {
  const std::vector<double> x = {1, 1, 1, 1};
  const std::vector<double> y = {2, 4, 6, 8};
  const auto out = loess(x, y, {.span = 1.0});
  for (const auto& pt : out) EXPECT_NEAR(pt.y, 5.0, 1e-9);
}

TEST(Loess, PreconditionsChecked) {
  const std::vector<double> x = {1, 2};
  const std::vector<double> y = {1};
  EXPECT_THROW(loess(x, y), precondition_error);
  const std::vector<double> ok = {1, 2};
  EXPECT_THROW(loess(ok, ok, {.span = 0.0}), precondition_error);
  EXPECT_THROW(loess(ok, ok, {.span = 1.5}), precondition_error);
}

}  // namespace
}  // namespace decloud::stats

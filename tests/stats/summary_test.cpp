#include "stats/summary.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/ensure.hpp"

namespace decloud::stats {
namespace {

TEST(Accumulator, EmptyDefaults) {
  Accumulator a;
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.mean(), 0.0);
  EXPECT_EQ(a.variance(), 0.0);
}

TEST(Accumulator, SingleSample) {
  Accumulator a;
  a.add(7.0);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_DOUBLE_EQ(a.mean(), 7.0);
  EXPECT_DOUBLE_EQ(a.variance(), 0.0);
  EXPECT_DOUBLE_EQ(a.min(), 7.0);
  EXPECT_DOUBLE_EQ(a.max(), 7.0);
}

TEST(Accumulator, KnownMeanAndVariance) {
  Accumulator a;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) a.add(v);
  EXPECT_DOUBLE_EQ(a.mean(), 5.0);
  // Sample variance with n−1 = 7: Σ(x−5)² = 32 → 32/7.
  EXPECT_NEAR(a.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(a.stddev() * a.stddev(), a.variance(), 1e-12);
  EXPECT_DOUBLE_EQ(a.min(), 2.0);
  EXPECT_DOUBLE_EQ(a.max(), 9.0);
}

TEST(Accumulator, HandlesNegativeValues) {
  Accumulator a;
  a.add(-10.0);
  a.add(10.0);
  EXPECT_DOUBLE_EQ(a.mean(), 0.0);
  EXPECT_DOUBLE_EQ(a.min(), -10.0);
  EXPECT_DOUBLE_EQ(a.max(), 10.0);
}

TEST(Percentile, EndpointsAndMedian) {
  const std::vector<double> s = {5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(s, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(s, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(s, 0.5), 3.0);
}

TEST(Percentile, LinearInterpolation) {
  const std::vector<double> s = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(s, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(percentile(s, 0.75), 7.5);
}

TEST(Percentile, SingleElement) {
  const std::vector<double> s = {42.0};
  EXPECT_DOUBLE_EQ(percentile(s, 0.0), 42.0);
  EXPECT_DOUBLE_EQ(percentile(s, 0.37), 42.0);
  EXPECT_DOUBLE_EQ(percentile(s, 1.0), 42.0);
}

TEST(Percentile, Preconditions) {
  const std::vector<double> empty;
  EXPECT_THROW(percentile(empty, 0.5), precondition_error);
  const std::vector<double> s = {1.0};
  EXPECT_THROW(percentile(s, -0.1), precondition_error);
  EXPECT_THROW(percentile(s, 1.1), precondition_error);
}

TEST(Mean, BasicAndEmpty) {
  const std::vector<double> s = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(mean(s), 2.0);
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
}

}  // namespace
}  // namespace decloud::stats

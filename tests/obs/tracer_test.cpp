// Tracer + SpanScope: the deterministic logical clock, LIFO nesting
// discipline, injected wall clocks, and the null-sink no-op contract.
#include "obs/tracer.hpp"

#include <gtest/gtest.h>

#include "common/ensure.hpp"
#include "obs/clock.hpp"
#include "obs/sink.hpp"

namespace decloud::obs {
namespace {

TEST(Tracer, LogicalClockTicksPerBeginAndEnd) {
  Tracer t;
  const std::size_t outer = t.begin_span("outer");
  const std::size_t inner = t.begin_span("inner");
  t.end_span(inner, /*work=*/5);
  t.end_span(outer);

  ASSERT_EQ(t.spans().size(), 2u);
  const SpanRecord& o = t.spans()[outer];
  const SpanRecord& i = t.spans()[inner];
  EXPECT_EQ(o.name, "outer");
  EXPECT_EQ(o.depth, 0u);
  EXPECT_EQ(o.seq_begin, 1u);
  EXPECT_EQ(i.depth, 1u);
  EXPECT_EQ(i.seq_begin, 2u);
  EXPECT_EQ(i.seq_end, 3u);
  EXPECT_EQ(o.seq_end, 4u);
  EXPECT_EQ(i.work, 5u);
  EXPECT_EQ(t.events(), 4u);
  EXPECT_FALSE(o.open());
  EXPECT_FALSE(i.open());
}

TEST(Tracer, LogicalModeLeavesWallFieldsZero) {
  Tracer t;
  EXPECT_FALSE(t.has_clock());
  const std::size_t s = t.begin_span("s");
  t.end_span(s);
  EXPECT_EQ(t.spans()[s].ts_ns, 0u);
  EXPECT_EQ(t.spans()[s].dur_ns, 0u);
}

TEST(Tracer, FakeClockGivesExactTimestampsAndDurations) {
  FakeClock clock(/*start_ns=*/1000, /*auto_step_ns=*/0);
  Tracer t(&clock);
  EXPECT_TRUE(t.has_clock());
  const std::size_t s = t.begin_span("s");  // reads ts = 1000
  clock.advance(250);
  t.end_span(s);  // reads 1250
  EXPECT_EQ(t.spans()[s].ts_ns, 1000u);
  EXPECT_EQ(t.spans()[s].dur_ns, 250u);
}

TEST(Tracer, NonLifoCloseIsRejected) {
  Tracer t;
  const std::size_t outer = t.begin_span("outer");
  const std::size_t inner = t.begin_span("inner");
  // Closing the outer span while the inner is still open would corrupt the
  // nesting structure the trace export relies on.
  EXPECT_THROW(t.end_span(outer), precondition_error);
  t.end_span(inner);
  t.end_span(outer);
  EXPECT_EQ(t.open_depth(), 0u);
}

TEST(Tracer, DoubleCloseIsRejected) {
  Tracer t;
  const std::size_t s = t.begin_span("s");
  t.end_span(s);
  EXPECT_THROW(t.end_span(s), precondition_error);
  EXPECT_THROW(t.end_span(99), precondition_error);  // out of range
}

TEST(SpanScope, NullSinkIsANoOp) {
  // The hook form instrumented code uses: with sink == nullptr every
  // member must collapse to nothing (the zero-cost contract).
  SpanScope span(nullptr, "stage");
  span.add_work(1000);  // must not crash or allocate a tracer
}

TEST(SpanScope, RecordsWorkAndClosesOnScopeExit) {
  MetricsSink sink("test");
  {
    SpanScope span(&sink, "stage");
    span.add_work(3);
    span.add_work(4);
    EXPECT_EQ(sink.tracer().open_depth(), 1u);
  }
  EXPECT_EQ(sink.tracer().open_depth(), 0u);
  ASSERT_EQ(sink.tracer().spans().size(), 1u);
  EXPECT_EQ(sink.tracer().spans()[0].name, "stage");
  EXPECT_EQ(sink.tracer().spans()[0].work, 7u);
}

TEST(SpanScope, NestsAcrossScopes) {
  MetricsSink sink("test");
  {
    SpanScope outer(&sink, "outer");
    { SpanScope inner(&sink, "inner"); }
    { SpanScope inner2(&sink, "inner2"); }
  }
  ASSERT_EQ(sink.tracer().spans().size(), 3u);
  EXPECT_EQ(sink.tracer().spans()[0].depth, 0u);
  EXPECT_EQ(sink.tracer().spans()[1].depth, 1u);
  EXPECT_EQ(sink.tracer().spans()[2].depth, 1u);
}

TEST(MergedExports, ChromeTraceIsDeterministicInLogicalMode) {
  // Two sinks built identically (different construction interleavings are
  // impossible here since each sink is single-owner) must export the same
  // bytes, and the export must carry the pid/process_name structure.
  auto build = [] {
    MetricsSink a("alpha");
    {
      SpanScope s(&a, "work");
      s.add_work(2);
    }
    return merged_chrome_trace({&a});
  };
  const std::string first = build();
  EXPECT_EQ(first, build());
  EXPECT_NE(first.find("\"traceEvents\""), std::string::npos) << first;
  EXPECT_NE(first.find("\"ph\":\"X\""), std::string::npos) << first;
  EXPECT_NE(first.find("alpha"), std::string::npos) << first;
}

TEST(MergedExports, MetricsMergeInFixedOrder) {
  MetricsSink a("a");
  MetricsSink b("b");
  a.metrics().counter("n").add(1);
  b.metrics().counter("n").add(2);
  const std::string merged = merged_metrics_json({&a, &b});
  EXPECT_NE(merged.find("\"n\":3"), std::string::npos) << merged;
  // Merging is commutative for sums, so order changes nothing here — but
  // the exported bytes must match exactly either way.
  EXPECT_EQ(merged, merged_metrics_json({&b, &a}));
}

}  // namespace
}  // namespace decloud::obs

// Export edge cases (ISSUE 9 satellite): the merge/export pipeline's
// degenerate inputs — empty registries, empty extra sinks in the engine's
// export_order, and merges of empty histograms — must produce well-formed,
// stable bytes, because the CI byte-diff jobs cmp these exports verbatim.
#include <gtest/gtest.h>

#include <string>

#include "engine/driver.hpp"
#include "engine/engine.hpp"
#include "engine/epoch_scheduler.hpp"
#include "obs/metrics.hpp"
#include "obs/sink.hpp"
#include "stats/histogram.hpp"

namespace decloud::obs {
namespace {

TEST(ExportEdgeCases, EmptyRegistryExportsAreWellFormed) {
  const MetricsRegistry empty;
  EXPECT_TRUE(empty.empty());
  // Every section present even when empty — consumers can always index
  // "counters"/"gauges"/"histograms" without existence checks.
  EXPECT_EQ(empty.to_json(), "{\"counters\":{},\"gauges\":{},\"histograms\":{}}");
  // Prometheus exposition of nothing is the empty document, not a stray
  // header or newline.
  EXPECT_EQ(empty.to_prometheus(), "");
}

TEST(ExportEdgeCases, EmptyExtraSinkNeverChangesEngineExports) {
  engine::EngineConfig config;
  config.router.num_shards = 2;
  config.router.x0 = 0.0;
  config.router.x1 = 100.0;
  config.router.y0 = 0.0;
  config.router.y1 = 100.0;
  config.market.consensus.difficulty_bits = 6;
  config.market.num_verifiers = 1;
  config.market.consensus.auction.threads = 1;
  config.observability = true;
  engine::MarketEngine eng(config);
  engine::EpochScheduler scheduler(eng, 1);
  engine::TraceDriverConfig driver;
  driver.workload.num_requests = 20;
  driver.workload.num_offers = 10;
  driver.bids_per_epoch = 10;
  driver.seed = 7;
  (void)engine::drive_trace(eng, scheduler, driver);

  const std::string baseline_json = eng.metrics_json(scheduler.sink());
  const std::string baseline_prom = eng.metrics_prometheus(scheduler.sink());

  // An extra sink whose registry is empty contributes nothing: same bytes
  // as the two-sink export.  (This is the journal-off driver path: the
  // extras array is built unconditionally, the empty slots must be inert.)
  const MetricsSink empty_extra("empty-extra");
  const MetricsSink* extras[] = {scheduler.sink(), &empty_extra};
  EXPECT_EQ(eng.metrics_json(extras), baseline_json);
  EXPECT_EQ(eng.metrics_prometheus(extras), baseline_prom);

  // Null entries are skipped outright, not dereferenced.
  const MetricsSink* with_null[] = {scheduler.sink(), nullptr};
  EXPECT_EQ(eng.metrics_json(with_null), baseline_json);
}

TEST(ExportEdgeCases, MergingAnEmptyHistogramLeavesExportBytesUnchanged) {
  MetricsRegistry registry;
  stats::Histogram& h = registry.histogram("latency", 0.0, 8.0, 4);
  h.add(1.0);
  h.add(5.0);
  h.add(7.5, 2.0);
  const std::string before_json = registry.to_json();
  const std::string before_prom = registry.to_prometheus();

  // merge() of an empty same-layout histogram is the identity — bin
  // counts, totals, and therefore every exported byte stay put.
  stats::Histogram empty(0.0, 8.0, 4);
  h.merge(empty);
  EXPECT_EQ(registry.to_json(), before_json);
  EXPECT_EQ(registry.to_prometheus(), before_prom);

  // Same at the registry level: merge_from an empty registry is inert,
  // and merging INTO an empty registry reproduces the source bytes.
  MetricsRegistry other;
  registry.merge_from(other);
  EXPECT_EQ(registry.to_json(), before_json);
  other.merge_from(registry);
  EXPECT_EQ(other.to_json(), before_json);
  EXPECT_EQ(other.to_prometheus(), before_prom);
}

}  // namespace
}  // namespace decloud::obs

// The observability acceptance bar (ISSUE 4): a sharded engine run with
// live sinks exports byte-identical metrics JSON, Prometheus text, and
// Chrome trace JSON across scheduler thread counts {1, 2, hw} — and
// attaching the sinks never changes the market results themselves.
#include <gtest/gtest.h>

#include <string>

#include "common/thread_pool.hpp"
#include "engine/driver.hpp"
#include "engine/engine.hpp"
#include "engine/epoch_scheduler.hpp"
#include "obs/clock.hpp"

namespace decloud::engine {
namespace {

EngineConfig engine_config(std::size_t shards, bool observability,
                           obs::Clock* clock = nullptr) {
  EngineConfig config;
  config.router.num_shards = shards;
  config.router.x0 = 0.0;
  config.router.x1 = 100.0;
  config.router.y0 = 0.0;
  config.router.y1 = 100.0;
  config.market.consensus.difficulty_bits = 8;
  config.market.num_verifiers = 1;
  config.market.consensus.auction.threads = 1;
  config.observability = observability;
  config.clock = clock;
  return config;
}

TraceDriverConfig driver_config() {
  TraceDriverConfig driver;
  driver.workload.num_requests = 40;
  driver.workload.num_offers = 20;
  driver.located_fraction = 0.8;
  driver.bids_per_epoch = 20;
  driver.seed = 7;
  return driver;
}

struct Exports {
  std::string summary;
  std::string metrics;
  std::string prometheus;
  std::string trace;
};

Exports run_instrumented(std::size_t threads) {
  MarketEngine engine(engine_config(4, /*observability=*/true));
  EpochScheduler scheduler(engine, threads);
  const DriveOutcome outcome = drive_trace(engine, scheduler, driver_config());
  return {outcome.report.summary_json(), scheduler.metrics_json(),
          scheduler.metrics_prometheus(), scheduler.trace_json()};
}

TEST(ExportDeterminism, ByteIdenticalAcrossThreadCounts) {
  const std::size_t hw = ThreadPool::default_workers();
  Exports baseline;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, hw}) {
    const Exports e = run_instrumented(threads);
    if (baseline.metrics.empty()) {
      baseline = e;
      // Sanity: the export reflects real work, not an empty registry.
      ASSERT_NE(e.metrics.find("engine.shard_epochs"), std::string::npos) << e.metrics;
      ASSERT_NE(e.metrics.find("auction.rounds"), std::string::npos) << e.metrics;
      ASSERT_NE(e.trace.find("\"traceEvents\""), std::string::npos);
    } else {
      EXPECT_EQ(e.metrics, baseline.metrics) << "metrics diverge at threads=" << threads;
      EXPECT_EQ(e.prometheus, baseline.prometheus)
          << "prometheus diverges at threads=" << threads;
      EXPECT_EQ(e.trace, baseline.trace) << "trace diverges at threads=" << threads;
      EXPECT_EQ(e.summary, baseline.summary);
    }
  }
}

TEST(ExportDeterminism, SinksNeverChangeMarketResults) {
  // The other half of the zero-cost contract: instrumented and bare runs
  // produce byte-identical market reports.  The sink observes; it never
  // participates.
  MarketEngine bare(engine_config(4, /*observability=*/false));
  EpochScheduler bare_scheduler(bare, 2);
  const std::string without =
      drive_trace(bare, bare_scheduler, driver_config()).report.summary_json();

  MarketEngine instrumented(engine_config(4, /*observability=*/true));
  EpochScheduler scheduler(instrumented, 2);
  const std::string with =
      drive_trace(instrumented, scheduler, driver_config()).report.summary_json();

  EXPECT_EQ(with, without);
}

TEST(ExportDeterminism, WallClockChangesTraceButNotMetrics) {
  // A FakeClock with a nonzero step produces nonzero wall durations (so
  // the trace bytes legitimately differ from logical mode), while the
  // metrics export — counters of deterministic work — stays identical.
  obs::FakeClock clock(/*start_ns=*/0, /*auto_step_ns=*/1000);
  MarketEngine engine(engine_config(2, /*observability=*/true, &clock));
  EpochScheduler scheduler(engine, 1);
  (void)drive_trace(engine, scheduler, driver_config());
  const std::string timed_metrics = scheduler.metrics_json();
  const std::string timed_trace = scheduler.trace_json();

  MarketEngine logical(engine_config(2, /*observability=*/true));
  EpochScheduler logical_scheduler(logical, 1);
  (void)drive_trace(logical, logical_scheduler, driver_config());

  EXPECT_EQ(timed_metrics, logical_scheduler.metrics_json());
  EXPECT_NE(timed_trace, logical_scheduler.trace_json());
  EXPECT_NE(timed_trace.find("\"dur\":"), std::string::npos);
}

TEST(ExportDeterminism, ObservabilityOffExportsOnlyTheSummarySink) {
  // Without observability the shards carry no sinks; the export still
  // works (engine ingest counters + router annotation) and stays valid.
  MarketEngine engine(engine_config(2, /*observability=*/false));
  EpochScheduler scheduler(engine, 1);
  (void)drive_trace(engine, scheduler, driver_config());
  EXPECT_EQ(engine.shard_sink(0), nullptr);
  EXPECT_EQ(scheduler.sink(), nullptr);
  const std::string metrics = scheduler.metrics_json();
  EXPECT_NE(metrics.find("engine.num_shards"), std::string::npos) << metrics;
  EXPECT_EQ(metrics.find("auction.rounds"), std::string::npos) << metrics;
}

}  // namespace
}  // namespace decloud::engine

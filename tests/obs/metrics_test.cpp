// MetricsRegistry: create-on-first-use handles, deterministic merge
// semantics, and the byte-compared export formats (DESIGN.md §3e).
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <string>

#include "common/ensure.hpp"

namespace decloud::obs {
namespace {

TEST(Metrics, CounterCreatesOnFirstUseAndAccumulates) {
  MetricsRegistry reg;
  reg.counter("auction.rounds").add();
  reg.counter("auction.rounds").add(4);
  EXPECT_EQ(reg.counter("auction.rounds").value(), 5u);
  EXPECT_FALSE(reg.empty());
}

TEST(Metrics, CounterHandleStaysValidAcrossLaterRegistrations) {
  // Hot paths resolve a name once; std::map node stability must keep the
  // reference alive while other metrics are created around it.
  MetricsRegistry reg;
  Counter& c = reg.counter("m.first");
  for (int i = 0; i < 64; ++i) reg.counter("m.other" + std::to_string(i)).add();
  c.add(7);
  EXPECT_EQ(reg.counter("m.first").value(), 7u);
}

TEST(Metrics, GaugeSetAndAdd) {
  MetricsRegistry reg;
  reg.gauge("welfare").set(2.5);
  reg.gauge("welfare").add(0.5);
  EXPECT_DOUBLE_EQ(reg.gauge("welfare").value(), 3.0);
}

TEST(Metrics, HistogramFirstUseFixesLayout) {
  MetricsRegistry reg;
  reg.histogram("price", 0.0, 4.0, 8).add(1.0);
  // Same layout: same handle.
  EXPECT_EQ(reg.histogram("price", 0.0, 4.0, 8).total(), 1.0);
  // Different layout: refuse rather than mix bucket meanings.
  EXPECT_THROW(reg.histogram("price", 0.0, 8.0, 8), precondition_error);
  EXPECT_THROW(reg.histogram("price", 0.0, 4.0, 4), precondition_error);
}

TEST(Metrics, MergeSumsCountersAndGaugesAndFoldsHistograms) {
  MetricsRegistry a;
  a.counter("n").add(3);
  a.gauge("w").set(1.5);
  a.histogram("h", 0.0, 1.0, 2).add(0.25);

  MetricsRegistry b;
  b.counter("n").add(4);
  b.counter("only_b").add(1);
  b.gauge("w").set(2.5);
  b.histogram("h", 0.0, 1.0, 2).add(0.75);

  a.merge_from(b);
  EXPECT_EQ(a.counter("n").value(), 7u);
  EXPECT_EQ(a.counter("only_b").value(), 1u);
  EXPECT_DOUBLE_EQ(a.gauge("w").value(), 4.0);
  EXPECT_EQ(a.histogram("h", 0.0, 1.0, 2).count(0), 1.0);
  EXPECT_EQ(a.histogram("h", 0.0, 1.0, 2).count(1), 1.0);
}

TEST(Metrics, MergeRejectsMismatchedHistogramLayout) {
  MetricsRegistry a;
  a.histogram("h", 0.0, 1.0, 2).add(0.25);
  MetricsRegistry b;
  b.histogram("h", 0.0, 2.0, 2).add(0.25);
  EXPECT_THROW(a.merge_from(b), precondition_error);
}

TEST(Metrics, JsonExportIsSortedAndStable) {
  // Insertion order must not leak into the export: the registry walks
  // names in sorted order, so two registries with the same contents
  // serialize byte-identically regardless of how they were built.
  MetricsRegistry a;
  a.counter("zebra").add(1);
  a.counter("alpha").add(2);
  a.gauge("g").set(0.5);

  MetricsRegistry b;
  b.gauge("g").set(0.5);
  b.counter("alpha").add(2);
  b.counter("zebra").add(1);

  EXPECT_EQ(a.to_json(), b.to_json());
  EXPECT_EQ(a.to_json(),
            "{\"counters\":{\"alpha\":2,\"zebra\":1},\"gauges\":{\"g\":0.5},"
            "\"histograms\":{}}");
}

TEST(Metrics, JsonExportIncludesHistogramBuckets) {
  MetricsRegistry reg;
  auto& h = reg.histogram("lat", 0.0, 2.0, 2);
  h.add(0.5);
  h.add(1.5);
  h.add(1.5);
  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"lat\":{\"lo\":0,\"hi\":2,\"total\":3,\"sum\":3.5,"
                      "\"buckets\":[1,2]}"),
            std::string::npos)
      << json;
}

TEST(Metrics, PrometheusExportMapsDotsAndEmitsCumulativeBuckets) {
  MetricsRegistry reg;
  reg.counter("auction.rounds").add(2);
  auto& h = reg.histogram("auction.price", 0.0, 2.0, 2);
  h.add(0.5);
  h.add(1.5);
  const std::string prom = reg.to_prometheus();
  EXPECT_NE(prom.find("# TYPE auction_rounds counter\nauction_rounds 2\n"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("auction_price_bucket{le=\"1\"} 1\n"), std::string::npos) << prom;
  EXPECT_NE(prom.find("auction_price_bucket{le=\"2\"} 2\n"), std::string::npos) << prom;
  EXPECT_NE(prom.find("auction_price_bucket{le=\"+Inf\"} 2\n"), std::string::npos) << prom;
  EXPECT_NE(prom.find("auction_price_sum 2\n"), std::string::npos) << prom;
  EXPECT_NE(prom.find("auction_price_count 2\n"), std::string::npos) << prom;
  // The raw dotted names must not survive into Prometheus output.
  EXPECT_EQ(prom.find("auction.rounds"), std::string::npos);
}

TEST(Metrics, EmptyRegistryExports) {
  const MetricsRegistry reg;
  EXPECT_TRUE(reg.empty());
  EXPECT_EQ(reg.to_json(), "{\"counters\":{},\"gauges\":{},\"histograms\":{}}");
  EXPECT_EQ(reg.to_prometheus(), "");
}

}  // namespace
}  // namespace decloud::obs

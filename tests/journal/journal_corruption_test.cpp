// Corrupt-input regressions for the shared "DCJ1"/"DCW1" wire codec:
// truncation at EVERY prefix length, header bit flips, and overlong
// varints must all surface as wire::decode_error — never UB, a raw
// ByteReader precondition, or silently adopted partial state.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/byte_buffer.hpp"
#include "journal/journal.hpp"
#include "journal/wire.hpp"

namespace decloud::journal {
namespace {

Journal make_journal() {
  Journal journal(2, 8);
  journal.append(0, {EventKind::kEpochClose, 0, 1, 0, 10, 0});
  journal.append(1, {EventKind::kTradeStruck, 0, 1, 3, 0, 0, 1.5, 0.25});
  journal.append(1, {EventKind::kIngestAdmitted, 0, 2, 0, 7, 1});
  journal.append(1, {EventKind::kBlockMined, 0, 2, 4, 9, 9, 11.0});
  return journal;
}

TEST(JournalCorruption, EveryStrictPrefixThrows) {
  const std::vector<std::uint8_t> bytes = make_journal().encode();
  ASSERT_GT(bytes.size(), 8u);
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    const std::vector<std::uint8_t> prefix(bytes.begin(),
                                           bytes.begin() + static_cast<std::ptrdiff_t>(len));
    EXPECT_THROW(Journal::decode(prefix), wire::decode_error) << "prefix length " << len;
  }
  // The full buffer still round-trips.
  EXPECT_NO_THROW(Journal::decode(bytes));
}

TEST(JournalCorruption, HeaderBitFlipsThrow) {
  const std::vector<std::uint8_t> bytes = make_journal().encode();
  // Magic (4 bytes) + version byte: any flip must be rejected outright.
  for (std::size_t byte = 0; byte < 5; ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<std::uint8_t> flipped = bytes;
      flipped[byte] ^= static_cast<std::uint8_t>(1u << bit);
      EXPECT_THROW(Journal::decode(flipped), wire::decode_error)
          << "byte " << byte << " bit " << bit;
    }
  }
}

TEST(JournalCorruption, TrailingBytesThrow) {
  std::vector<std::uint8_t> bytes = make_journal().encode();
  bytes.push_back(0);
  EXPECT_THROW(Journal::decode(bytes), wire::decode_error);
}

TEST(WireCodec, VarintRoundTripAndLimits) {
  for (const std::uint64_t v :
       {0ULL, 1ULL, 127ULL, 128ULL, 16383ULL, 16384ULL, 0xFFFFFFFFULL, ~0ULL}) {
    ByteWriter w;
    wire::write_varint(w, v);
    ByteReader r(w.bytes());
    EXPECT_EQ(wire::read_varint(r), v);
    EXPECT_TRUE(r.exhausted());
  }

  // Truncated multi-byte varint: continuation bit set, stream ends.
  {
    const std::vector<std::uint8_t> bytes = {0x80};
    ByteReader r(bytes);
    EXPECT_THROW(wire::read_varint(r), wire::decode_error);
  }
  // Overlong: ten continuation bytes never terminate.
  {
    const std::vector<std::uint8_t> bytes(11, 0x80);
    ByteReader r(bytes);
    EXPECT_THROW(wire::read_varint(r), wire::decode_error);
  }
  // A 10th byte above 1 would overflow 64 bits; canonical decoders reject
  // it instead of silently keeping the low bits.
  {
    std::vector<std::uint8_t> bytes(9, 0x80);
    bytes.push_back(0x02);
    ByteReader r(bytes);
    EXPECT_THROW(wire::read_varint(r), wire::decode_error);
  }
}

TEST(WireCodec, Crc32CheckVector) {
  // The canonical IEEE 802.3 check value: crc32("123456789").
  const std::vector<std::uint8_t> bytes = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(wire::crc32(bytes), 0xCBF43926u);
  EXPECT_EQ(wire::crc32({}), 0x00000000u);
}

TEST(WireCodec, BlobLengthValidatedBeforeAlloc) {
  // A blob length far beyond the remaining bytes must throw, not allocate.
  ByteWriter w;
  w.write_u32(0x7FFFFFFFu);
  ByteReader r(w.bytes());
  EXPECT_THROW(wire::read_blob(r), wire::decode_error);
}

}  // namespace
}  // namespace decloud::journal

// The flight recorder's acceptance bar (ISSUE 9): journal bytes are
// IDENTICAL at scheduler threads {1, 2, hw}, in batch vs aligned-trigger
// stream mode, with and without an active fault plan — and still identical
// when tiny rings force drop-oldest overflow.  This is the same oracle
// discipline as stream_determinism_test, applied to the journal encoding
// instead of the report summary.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/thread_pool.hpp"
#include "engine/driver.hpp"
#include "engine/engine.hpp"
#include "engine/epoch_scheduler.hpp"
#include "fault/fault.hpp"
#include "journal/journal.hpp"
#include "stream/stream_driver.hpp"
#include "stream/streaming_market.hpp"

namespace decloud::journal {
namespace {

constexpr std::size_t kBatch = 16;

engine::EngineConfig engine_config(const char* fault_plan, std::size_t journal_capacity) {
  engine::EngineConfig config;
  config.router.num_shards = 4;
  config.router.x0 = 0.0;
  config.router.x1 = 100.0;
  config.router.y0 = 0.0;
  config.router.y1 = 100.0;
  config.market.consensus.difficulty_bits = 6;
  config.market.num_verifiers = 1;
  config.market.consensus.auction.threads = 1;
  config.market.consensus.max_remine_attempts = 1;
  config.journal_capacity = journal_capacity;
  if (fault_plan != nullptr) {
    config.fault_plan = fault::FaultPlan::parse(fault_plan);
    config.fault_seed = 3;
  }
  return config;
}

engine::TraceDriverConfig driver_config() {
  engine::TraceDriverConfig driver;
  driver.workload.num_requests = 60;
  driver.workload.num_offers = 30;
  driver.located_fraction = 0.8;
  driver.bids_per_epoch = kBatch;
  driver.seed = 7;
  return driver;
}

std::vector<std::uint8_t> batch_journal(std::size_t threads, const char* fault_plan,
                                        std::size_t capacity = 4096) {
  engine::MarketEngine engine(engine_config(fault_plan, capacity));
  engine::EpochScheduler scheduler(engine, threads);
  (void)engine::drive_trace(engine, scheduler, driver_config());
  return engine.journal()->encode();
}

std::vector<std::uint8_t> stream_journal(std::size_t threads, const char* fault_plan,
                                         std::size_t capacity = 4096) {
  stream::StreamConfig config;
  config.engine = engine_config(fault_plan, capacity);
  config.triggers.bids = kBatch;
  config.threads = threads;
  stream::StreamingMarket market(config);
  (void)stream::drive_trace_stream(market, driver_config());
  return market.market_engine().journal()->encode();
}

TEST(JournalDeterminism, ByteIdenticalAcrossThreadsAndModes) {
  const std::size_t hw = ThreadPool::default_workers();
  const std::vector<std::uint8_t> oracle = batch_journal(1, nullptr);
  // The oracle run really recorded market activity.
  const Journal decoded = Journal::decode(oracle);
  EXPECT_EQ(decoded.num_rings(), 5u);  // control + 4 shards
  EXPECT_GT(decoded.total_events(), 0u);
  std::size_t trades = 0;
  for (std::size_t ring = 1; ring < decoded.num_rings(); ++ring) {
    for (const Event& e : decoded.events(ring)) {
      if (e.kind == EventKind::kTradeStruck) ++trades;
    }
  }
  EXPECT_GT(trades, 0u);

  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, hw}) {
    EXPECT_EQ(batch_journal(threads, nullptr), oracle) << "batch threads=" << threads;
    EXPECT_EQ(stream_journal(threads, nullptr), oracle) << "stream threads=" << threads;
  }
}

TEST(JournalDeterminism, ChaosJournalsByteIdenticalAcrossThreadsAndModes) {
  static constexpr const char* kPlan =
      "reject_ingest:p=0.1;withhold_reveal:p=0.2;dishonest_vote:p=0.25;deny_agreement:p=0.2";
  const std::size_t hw = ThreadPool::default_workers();
  const std::vector<std::uint8_t> oracle = batch_journal(1, kPlan);
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, hw}) {
    EXPECT_EQ(batch_journal(threads, kPlan), oracle) << "batch threads=" << threads;
    EXPECT_EQ(stream_journal(threads, kPlan), oracle) << "stream threads=" << threads;
  }
  // The chaos journal differs from the clean one AND records the chaos —
  // otherwise this test degrades into the clean variant silently.
  EXPECT_NE(oracle, batch_journal(1, nullptr));
  const Journal decoded = Journal::decode(oracle);
  std::size_t faults = 0;
  std::size_t penalties = 0;
  for (std::size_t ring = 0; ring < decoded.num_rings(); ++ring) {
    for (const Event& e : decoded.events(ring)) {
      if (e.kind == EventKind::kFaultFired) ++faults;
      if (e.kind == EventKind::kReputationPenalty) ++penalties;
    }
  }
  EXPECT_GT(faults, 0u);
  EXPECT_GT(penalties, 0u);
}

TEST(JournalDeterminism, OverflowingRingsStayDeterministic) {
  // Tiny rings force drop-oldest on every shard; the surviving tail (and
  // the drop counts) must still be byte-identical across thread counts.
  const std::size_t hw = ThreadPool::default_workers();
  const std::vector<std::uint8_t> oracle = batch_journal(1, nullptr, /*capacity=*/8);
  const Journal decoded = Journal::decode(oracle);
  std::uint64_t drops = 0;
  for (std::size_t ring = 0; ring < decoded.num_rings(); ++ring) {
    EXPECT_LE(decoded.size(ring), 8u);
    drops += decoded.dropped(ring);
  }
  EXPECT_GT(drops, 0u) << "capacity 8 must overflow on this workload";
  for (const std::size_t threads : {std::size_t{2}, hw}) {
    EXPECT_EQ(batch_journal(threads, nullptr, 8), oracle) << "threads=" << threads;
  }
  EXPECT_EQ(stream_journal(1, nullptr, 8), oracle);
}

TEST(JournalDeterminism, JournalOffByDefaultAndNeverChangesResults) {
  // capacity 0 = no recorder: the engine holds no journal, and recording
  // never perturbs the market — reports with and without are identical.
  engine::MarketEngine off(engine_config(nullptr, 0));
  engine::EpochScheduler off_scheduler(off, 2);
  const std::string without =
      engine::drive_trace(off, off_scheduler, driver_config()).report.summary_json();
  EXPECT_EQ(off.journal(), nullptr);

  engine::MarketEngine on(engine_config(nullptr, 4096));
  engine::EpochScheduler on_scheduler(on, 2);
  const std::string with =
      engine::drive_trace(on, on_scheduler, driver_config()).report.summary_json();
  ASSERT_NE(on.journal(), nullptr);
  EXPECT_EQ(with, without);
}

}  // namespace
}  // namespace decloud::journal

// Unit coverage for the flight recorder core (DESIGN.md §3j): wire-format
// roundtrips, bounded-ring drop-oldest semantics, the JSONL export shape
// journal_query greps, the derived telemetry sink, and the append/decode
// precondition walls.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/ensure.hpp"
#include "journal/journal.hpp"
#include "journal/wire.hpp"
#include "obs/sink.hpp"

namespace decloud::journal {
namespace {

Event make(EventKind kind, std::uint64_t epoch, std::uint64_t a = 0, std::uint64_t b = 0,
           std::uint64_t c = 0, double x = 0.0, double y = 0.0) {
  return Event{kind, 0, epoch, a, b, c, x, y};
}

TEST(Journal, AppendStampsDenseSequencePerRing) {
  Journal journal(3, 8);
  journal.append(0, make(EventKind::kEpochClose, 1));
  journal.append(1, make(EventKind::kIngestAdmitted, 1));
  journal.append(0, make(EventKind::kEpochClose, 2));
  journal.append(2, make(EventKind::kIngestRejected, 1));

  const std::vector<Event> control = journal.events(0);
  ASSERT_EQ(control.size(), 2u);
  EXPECT_EQ(control[0].seq, 0u);
  EXPECT_EQ(control[1].seq, 1u);
  EXPECT_EQ(journal.events(1)[0].seq, 0u);  // per-ring clocks, not global
  EXPECT_EQ(journal.events(2)[0].seq, 0u);
  EXPECT_EQ(journal.total_events(), 4u);
}

TEST(Journal, EncodeDecodeRoundTripsByteExactly) {
  Journal journal(2, 16);
  journal.append(0, make(EventKind::kEpochClose, 3, 0, 60));
  journal.append(1, make(EventKind::kTradeStruck, 7, 4, 9, 0, 0.064615771817023326,
                         0.00040572962714523181));
  journal.append(1, make(EventKind::kBlockMined, 7, 12, 5, 3, 119.13878463764385));
  journal.append(1, make(EventKind::kResidueAbandoned, 8, 2, 1));

  const std::vector<std::uint8_t> bytes = journal.encode();
  ASSERT_GE(bytes.size(), 6u);
  EXPECT_EQ(bytes[0], 'D');
  EXPECT_EQ(bytes[1], 'C');
  EXPECT_EQ(bytes[2], 'J');
  EXPECT_EQ(bytes[3], '1');

  const Journal decoded = Journal::decode(bytes);
  EXPECT_EQ(decoded.num_rings(), journal.num_rings());
  EXPECT_EQ(decoded.capacity(), journal.capacity());
  // Re-encoding the decoded journal must reproduce the input bit-for-bit —
  // the doubles above are not representable in fewer than 17 digits, so
  // this catches any lossy path through the codec.
  EXPECT_EQ(decoded.encode(), bytes);

  const std::vector<Event> ring1 = decoded.events(1);
  ASSERT_EQ(ring1.size(), 3u);
  EXPECT_EQ(ring1[0].kind, EventKind::kTradeStruck);
  EXPECT_EQ(ring1[0].seq, 0u);
  EXPECT_EQ(ring1[0].epoch, 7u);
  EXPECT_EQ(ring1[0].a, 4u);
  EXPECT_EQ(ring1[0].x, 0.064615771817023326);
  EXPECT_EQ(ring1[0].y, 0.00040572962714523181);
  EXPECT_EQ(ring1[1].x, 119.13878463764385);
  EXPECT_EQ(ring1[2].kind, EventKind::kResidueAbandoned);
}

TEST(Journal, RingOverflowDropsOldestAndCountsDrops) {
  Journal journal(1, 4);
  for (std::uint64_t i = 0; i < 10; ++i) {
    journal.append(0, make(EventKind::kIngestAdmitted, i));
  }
  EXPECT_EQ(journal.size(0), 4u);
  EXPECT_EQ(journal.dropped(0), 6u);

  // The tail survives: seqs 6..9, oldest first, epochs matching.
  const std::vector<Event> events = journal.events(0);
  ASSERT_EQ(events.size(), 4u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, 6u + i);
    EXPECT_EQ(events[i].epoch, 6u + i);
  }

  // The drop count and the tail's first_seq survive the wire format too —
  // a truncated journal decodes as honestly truncated.
  const Journal decoded = Journal::decode(journal.encode());
  EXPECT_EQ(decoded.dropped(0), 6u);
  EXPECT_EQ(decoded.events(0)[0].seq, 6u);
  EXPECT_EQ(decoded.encode(), journal.encode());
}

TEST(Journal, ExportJsonlShape) {
  Journal journal(2, 4);
  journal.append(0, make(EventKind::kEpochClose, 1, 0, 16));
  journal.append(1, make(EventKind::kTradeStruck, 2, 3, 5, 0, 0.25, 0.125));

  const std::string jsonl = journal.export_jsonl();
  EXPECT_EQ(jsonl,
            "{\"ring\":0,\"kind\":\"ring_header\",\"dropped\":0,\"first_seq\":0,\"events\":1}\n"
            "{\"ring\":0,\"seq\":0,\"kind\":\"epoch_close\",\"epoch\":1,\"a\":0,\"b\":16,"
            "\"c\":0}\n"
            "{\"ring\":1,\"kind\":\"ring_header\",\"dropped\":0,\"first_seq\":0,\"events\":1}\n"
            "{\"ring\":1,\"seq\":0,\"kind\":\"trade_struck\",\"epoch\":2,\"a\":3,\"b\":5,"
            "\"c\":0,\"x\":0.25,\"y\":0.125}\n");
}

TEST(Journal, KindNamesAreUniqueAndStable) {
  for (std::size_t k = 0; k < kNumEventKinds; ++k) {
    const char* name = kind_name(static_cast<EventKind>(k));
    ASSERT_NE(name, nullptr);
    for (std::size_t j = 0; j < k; ++j) {
      EXPECT_STRNE(name, kind_name(static_cast<EventKind>(j)));
    }
  }
  EXPECT_STREQ(kind_name(EventKind::kTradeStruck), "trade_struck");
  EXPECT_EQ(kind_doubles(EventKind::kTradeStruck), 2u);
  EXPECT_EQ(kind_doubles(EventKind::kBlockMined), 1u);
  EXPECT_EQ(kind_doubles(EventKind::kEpochClose), 0u);
}

TEST(Journal, TelemetrySinkDerivesEconomicAggregates) {
  Journal journal(3, 16);  // control + 2 shards
  journal.append(0, make(EventKind::kEpochClose, 1, 0, 8));
  journal.append(0, make(EventKind::kEpochClose, 2, 2, 0));
  // Shard 0: two requests + one offer admitted, two trades, residue.
  journal.append(1, make(EventKind::kIngestAdmitted, 0, /*is_offer=*/0, 0, 1));
  journal.append(1, make(EventKind::kIngestAdmitted, 0, /*is_offer=*/0, 1, 1));
  journal.append(1, make(EventKind::kIngestAdmitted, 0, /*is_offer=*/1, 2, 1));
  journal.append(1, make(EventKind::kTradeStruck, 1, 0, 0, 0, 0.5, 2.0));
  journal.append(1, make(EventKind::kTradeStruck, 1, 1, 0, 0, 0.25, 6.0));
  journal.append(1, make(EventKind::kBlockMined, 1, 0, 2, 2, 3.5));
  journal.append(1, make(EventKind::kResidueCarried, 1, 3,
                         static_cast<std::uint64_t>(CarryCause::kUnmatched)));
  // Shard 1: no trades, one abandonment.
  journal.append(2, make(EventKind::kResidueAbandoned, 1, 2, 1));

  obs::MetricsSink sink = telemetry_sink(journal);
  EXPECT_EQ(sink.label(), "journal");
  const std::string json = sink.metrics().to_json();

  obs::MetricsRegistry& m = sink.metrics();
  EXPECT_EQ(m.counter("journal.events").value(), 10u);
  EXPECT_EQ(m.counter("journal.epoch_closes").value(), 2u);
  EXPECT_EQ(m.counter("journal.ingest_admitted").value(), 3u);
  EXPECT_EQ(m.counter("journal.trades").value(), 2u);
  EXPECT_EQ(m.counter("journal.blocks_mined").value(), 1u);
  EXPECT_EQ(m.counter("journal.residue_carried").value(), 3u);
  EXPECT_EQ(m.counter("journal.residue_abandoned").value(), 3u);
  EXPECT_EQ(m.counter("journal.shard0.trades").value(), 2u);
  EXPECT_EQ(m.counter("journal.shard0.residue_carried").value(), 3u);
  EXPECT_EQ(m.counter("journal.shard1.residue_abandoned").value(), 3u);
  EXPECT_EQ(m.gauge("journal.welfare").value(), 3.5);
  // 2 trades over 2 admitted requests.
  EXPECT_EQ(m.gauge("journal.allocation_rate").value(), 1.0);
  // All trades on one shard of one trading shard: full concentration.
  EXPECT_EQ(m.gauge("journal.trading_shards").value(), 1.0);
  EXPECT_EQ(m.gauge("journal.trade_concentration").value(), 1.0);
  // Clearing-price dispersion histogram saw both unit prices.
  EXPECT_NE(json.find("journal.clearing_price"), std::string::npos) << json;
  EXPECT_NE(json.find("journal.welfare_per_block"), std::string::npos) << json;
}

TEST(Journal, AppendAndDecodePreconditions) {
  EXPECT_THROW(Journal(0, 8), precondition_error);
  EXPECT_THROW(Journal(2, 0), precondition_error);

  Journal journal(2, 4);
  EXPECT_THROW(journal.append(2, make(EventKind::kEpochClose, 1)), precondition_error);
  EXPECT_THROW(journal.append(0, make(static_cast<EventKind>(200), 1)), precondition_error);
  EXPECT_THROW(journal.size(5), precondition_error);
  EXPECT_THROW(journal.events(5), precondition_error);

  // Malformed buffers fail loudly with the structured decode error (a
  // caller mixing up files gets a parse diagnostic, not a crashed
  // invariant), never misparse.
  EXPECT_THROW(Journal::decode({}), wire::decode_error);
  const std::vector<std::uint8_t> bad_magic = {'X', 'C', 'J', '1', 1, 4, 2};
  EXPECT_THROW(Journal::decode(bad_magic), wire::decode_error);
  std::vector<std::uint8_t> truncated = journal.encode();
  journal.append(0, make(EventKind::kTradeStruck, 1, 0, 0, 0, 1.0, 2.0));
  truncated = journal.encode();
  truncated.resize(truncated.size() - 3);  // cut into the trailing doubles
  EXPECT_THROW(Journal::decode(truncated), wire::decode_error);
  std::vector<std::uint8_t> trailing = journal.encode();
  trailing.push_back(0);
  EXPECT_THROW(Journal::decode(trailing), wire::decode_error);
}

}  // namespace
}  // namespace decloud::journal

#include "common/ensure.hpp"

#include <gtest/gtest.h>

#include <string>

namespace decloud {
namespace {

TEST(Ensure, ExpectsPassesOnTrue) { EXPECT_NO_THROW(DECLOUD_EXPECTS(1 + 1 == 2)); }

TEST(Ensure, ExpectsThrowsPreconditionError) {
  EXPECT_THROW(DECLOUD_EXPECTS(false), precondition_error);
}

TEST(Ensure, EnsuresThrowsInvariantError) {
  EXPECT_THROW(DECLOUD_ENSURES(false), invariant_error);
}

TEST(Ensure, ErrorTypesAreDistinct) {
  // A caller-bug (precondition) must be distinguishable from a library bug
  // (invariant) so tests can assert the right one.
  static_assert(!std::is_same_v<precondition_error, invariant_error>);
  try {
    DECLOUD_EXPECTS(false);
    FAIL() << "should have thrown";
  } catch (const invariant_error&) {
    FAIL() << "precondition must not be caught as invariant";
  } catch (const precondition_error&) {
    SUCCEED();
  }
}

TEST(Ensure, MessageContainsExpressionAndDetail) {
  try {
    DECLOUD_EXPECTS_MSG(2 < 1, "custom detail");
    FAIL() << "should have thrown";
  } catch (const precondition_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("2 < 1"), std::string::npos);
    EXPECT_NE(msg.find("custom detail"), std::string::npos);
  }
}

TEST(Ensure, MessageContainsSourceLocation) {
  try {
    DECLOUD_ENSURES(false);
    FAIL() << "should have thrown";
  } catch (const invariant_error& e) {
    EXPECT_NE(std::string(e.what()).find("ensure_test.cpp"), std::string::npos);
  }
}

}  // namespace
}  // namespace decloud

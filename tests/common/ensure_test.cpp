#include "common/ensure.hpp"

#include <gtest/gtest.h>

#include <string>

namespace decloud {
namespace {

TEST(Ensure, ExpectsPassesOnTrue) { EXPECT_NO_THROW(DECLOUD_EXPECTS(1 + 1 == 2)); }

TEST(Ensure, ExpectsThrowsPreconditionError) {
  EXPECT_THROW(DECLOUD_EXPECTS(false), precondition_error);
}

TEST(Ensure, EnsuresThrowsInvariantError) {
  EXPECT_THROW(DECLOUD_ENSURES(false), invariant_error);
}

TEST(Ensure, ErrorTypesAreDistinct) {
  // A caller-bug (precondition) must be distinguishable from a library bug
  // (invariant) so tests can assert the right one.
  static_assert(!std::is_same_v<precondition_error, invariant_error>);
  try {
    DECLOUD_EXPECTS(false);
    FAIL() << "should have thrown";
  } catch (const invariant_error&) {
    FAIL() << "precondition must not be caught as invariant";
  } catch (const precondition_error&) {
    SUCCEED();
  }
}

TEST(Ensure, MessageContainsExpressionAndDetail) {
  try {
    DECLOUD_EXPECTS_MSG(2 < 1, "custom detail");
    FAIL() << "should have thrown";
  } catch (const precondition_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("2 < 1"), std::string::npos);
    EXPECT_NE(msg.find("custom detail"), std::string::npos);
  }
}

TEST(Ensure, MessageContainsSourceLocation) {
  try {
    DECLOUD_ENSURES(false);
    FAIL() << "should have thrown";
  } catch (const invariant_error& e) {
    EXPECT_NE(std::string(e.what()).find("ensure_test.cpp"), std::string::npos);
  }
}

TEST(Ensure, EnsuresMsgCarriesDetail) {
  try {
    DECLOUD_ENSURES_MSG(false, "ledger drifted");
    FAIL() << "should have thrown";
  } catch (const invariant_error& e) {
    EXPECT_NE(std::string(e.what()).find("ledger drifted"), std::string::npos);
  }
}

TEST(Ensure, FreeFunctionsMatchMacros) {
  // The macros are thin wrappers; the free functions must be usable
  // directly (the audit layer builds on the same throw path).
  EXPECT_NO_THROW(expects(true, "always"));
  EXPECT_NO_THROW(ensures(true, "always"));
  EXPECT_THROW(expects(false, "never"), precondition_error);
  EXPECT_THROW(ensures(false, "never"), invariant_error);
}

TEST(Ensure, ErrorsAreLogicErrors) {
  // Miners wrap whole-round verification in a single std::logic_error
  // handler; both error families must flow through it.
  EXPECT_THROW(DECLOUD_EXPECTS(false), std::logic_error);
  EXPECT_THROW(DECLOUD_ENSURES(false), std::logic_error);
}

TEST(Ensure, ConditionSideEffectsHappenExactlyOnce) {
  int evaluations = 0;
  DECLOUD_EXPECTS(++evaluations > 0);
  EXPECT_EQ(evaluations, 1);
}

}  // namespace
}  // namespace decloud

#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include "dsched/sync.hpp"
#include <numeric>
#include <stdexcept>
#include <vector>

namespace decloud {
namespace {

TEST(ThreadPoolTest, ZeroWorkersClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.worker_count(), 1u);
}

TEST(ThreadPoolTest, DefaultWorkersIsAtLeastOne) {
  EXPECT_GE(ThreadPool::default_workers(), 1u);
}

TEST(ThreadPoolTest, EmptyRangeRunsNothing) {
  ThreadPool pool(4);
  dsched::atomic<int> calls{0};
  pool.parallel_for(5, 5, 2, [&](std::size_t) { ++calls; });
  pool.parallel_for(7, 3, 2, [&](std::size_t) { ++calls; });  // begin > end
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPoolTest, VisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 1000;
  std::vector<dsched::atomic<int>> hits(kN);
  pool.parallel_for(0, kN, 7, [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPoolTest, ChunkLargerThanRange) {
  ThreadPool pool(4);
  dsched::atomic<int> calls{0};
  pool.parallel_for(10, 13, 100, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 3);
}

TEST(ThreadPoolTest, ChunkZeroIsClampedToOne) {
  ThreadPool pool(2);
  std::vector<dsched::atomic<int>> hits(8);
  pool.parallel_for(0, 8, 0, [&](std::size_t i) { ++hits[i]; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, NonZeroBeginOffsetsIndices) {
  ThreadPool pool(3);
  dsched::atomic<std::size_t> sum{0};
  pool.parallel_for(100, 110, 3, [&](std::size_t i) { sum += i; });
  EXPECT_EQ(sum.load(), std::size_t{1045});  // 100 + 101 + ... + 109
}

TEST(ThreadPoolTest, ExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(0, 100, 5,
                                 [](std::size_t i) {
                                   if (i == 42) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
}

TEST(ThreadPoolTest, LowestChunkExceptionWinsDeterministically) {
  ThreadPool pool(4);
  // Two throwing indices in different chunks (chunk size 10): index 15 is in
  // chunk 1, index 95 in chunk 9.  The rethrow must always pick chunk 1's
  // exception, regardless of which worker finished first.
  for (int round = 0; round < 20; ++round) {
    try {
      pool.parallel_for(0, 100, 10, [](std::size_t i) {
        if (i == 15) throw std::runtime_error("low");
        if (i == 95) throw std::runtime_error("high");
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "low");
    }
  }
}

TEST(ThreadPoolTest, PoolSurvivesExceptionAndRemainsUsable) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(0, 10, 1, [](std::size_t) { throw std::logic_error("once"); }),
      std::logic_error);
  dsched::atomic<int> calls{0};
  pool.parallel_for(0, 10, 1, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 10);
}

TEST(ThreadPoolTest, AutoChunkOverloadCoversRange) {
  ThreadPool pool(3);
  std::vector<dsched::atomic<int>> hits(257);
  pool.parallel_for(0, hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

// --- Nested-use contract: parallel_for from a pool worker must complete
// --- (the caller participates in chunk execution, so no free worker is
// --- required).  The engine's per-shard fan-out depends on this.

TEST(ThreadPoolTest, NestedParallelForOnSingleWorkerPoolDoesNotDeadlock) {
  ThreadPool pool(1);
  std::vector<dsched::atomic<int>> hits(64);
  pool.parallel_for(0, 8, 1, [&](std::size_t outer) {
    pool.parallel_for(0, 8, 1, [&](std::size_t inner) { ++hits[outer * 8 + inner]; });
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, NestedParallelForOnMultiWorkerPoolCoversRange) {
  ThreadPool pool(4);
  std::vector<dsched::atomic<int>> hits(25 * 25);
  pool.parallel_for(0, 25, 3, [&](std::size_t outer) {
    pool.parallel_for(0, 25, 3, [&](std::size_t inner) { ++hits[outer * 25 + inner]; });
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, NestedExceptionPropagatesThroughBothLevels) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(0, 4, 1,
                                 [&](std::size_t) {
                                   pool.parallel_for(0, 4, 1, [](std::size_t inner) {
                                     if (inner == 2) throw std::runtime_error("nested");
                                   });
                                 }),
               std::runtime_error);
  // The pool stays usable afterwards.
  dsched::atomic<int> calls{0};
  pool.parallel_for(0, 6, 1, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 6);
}

TEST(RunChunkedTest, NestedRunChunkedOnSamePoolCompletes) {
  ThreadPool pool(2);
  std::vector<dsched::atomic<int>> hits(12 * 12);
  run_chunked(&pool, 0, 12, [&](std::size_t outer) {
    run_chunked(&pool, 0, 12, [&](std::size_t inner) { ++hits[outer * 12 + inner]; });
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(RunChunkedTest, NullPoolRunsSeriallyInOrder) {
  std::vector<std::size_t> order;
  run_chunked(nullptr, 3, 8, [&](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::size_t>{3, 4, 5, 6, 7}));
}

TEST(RunChunkedTest, SingleWorkerPoolRunsSeriallyInOrder) {
  ThreadPool pool(1);
  std::vector<std::size_t> order;
  run_chunked(&pool, 0, 5, [&](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(RunChunkedTest, MultiWorkerPoolCoversRange) {
  ThreadPool pool(4);
  std::vector<dsched::atomic<int>> hits(100);
  run_chunked(&pool, 0, hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

}  // namespace
}  // namespace decloud

#include "common/bounded_queue.hpp"

#include <gtest/gtest.h>

#include "dsched/sync.hpp"
#include <vector>

#include "common/ensure.hpp"

namespace decloud {
namespace {

TEST(BoundedQueueTest, AcceptsBelowWatermarkQueuesAboveRejectsAtCapacity) {
  BoundedQueue<int> q(/*capacity=*/4, /*watermark=*/2);
  EXPECT_EQ(q.push(1).status, Admission::kAccepted);  // depth 1
  EXPECT_EQ(q.push(2).status, Admission::kAccepted);  // depth 2 (== watermark)
  EXPECT_EQ(q.push(3).status, Admission::kQueued);    // depth 3 > watermark
  EXPECT_EQ(q.push(4).status, Admission::kQueued);    // depth 4 (== capacity)
  const auto rejected = q.push(5);
  EXPECT_EQ(rejected.status, Admission::kRejected);
  EXPECT_EQ(rejected.reason, RejectReason::kCapacity);
  EXPECT_FALSE(rejected.admitted());
  EXPECT_EQ(q.size(), 4u);
}

TEST(BoundedQueueTest, DrainReturnsFifoAndResetsDepth) {
  BoundedQueue<int> q(8);
  for (int i = 0; i < 5; ++i) (void)q.push(i);
  const auto items = q.drain();
  EXPECT_EQ(items, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_TRUE(q.empty());
  // Depth reset: admission works again after a drain.
  EXPECT_EQ(q.push(99).status, Admission::kAccepted);
}

TEST(BoundedQueueTest, DrainReopensAdmissionAfterRejection) {
  BoundedQueue<int> q(2);
  (void)q.push(1);
  (void)q.push(2);
  EXPECT_EQ(q.push(3).status, Admission::kRejected);
  (void)q.drain();
  EXPECT_EQ(q.push(3).status, Admission::kAccepted);
}

TEST(BoundedQueueTest, DefaultWatermarkDisablesCongestionSignal) {
  BoundedQueue<int> q(3);  // watermark defaults past capacity
  EXPECT_EQ(q.push(1).status, Admission::kAccepted);
  EXPECT_EQ(q.push(2).status, Admission::kAccepted);
  EXPECT_EQ(q.push(3).status, Admission::kAccepted);
  EXPECT_EQ(q.push(4).status, Admission::kRejected);
}

TEST(BoundedQueueTest, ZeroCapacityIsAPreconditionViolation) {
  EXPECT_THROW(BoundedQueue<int>(0), precondition_error);
}

// --- Shutdown contract (close()): every push serializes either before
// --- the close — and then its value MUST surface in a drain — or after
// --- it, and is rejected with kClosed.  The dsched model queue_close
// --- checks the same invariant under every interleaving; these pin the
// --- single-threaded edges.

TEST(BoundedQueueTest, PushAfterCloseIsRejectedWithKClosed) {
  BoundedQueue<int> q(4);
  EXPECT_EQ(q.push(1).status, Admission::kAccepted);
  q.close();
  const auto rejected = q.push(2);
  EXPECT_EQ(rejected.status, Admission::kRejected);
  EXPECT_EQ(rejected.reason, RejectReason::kClosed);
  EXPECT_TRUE(q.closed());
}

TEST(BoundedQueueTest, CloseDoesNotDropQueuedItems) {
  BoundedQueue<int> q(4);
  (void)q.push(1);
  (void)q.push(2);
  q.close();
  EXPECT_EQ(q.drain(), (std::vector<int>{1, 2}));
  EXPECT_TRUE(q.empty());
}

TEST(BoundedQueueTest, CloseIsIdempotentAndDrainStaysUsable) {
  BoundedQueue<int> q(2);
  q.close();
  q.close();  // second close is a no-op
  EXPECT_TRUE(q.closed());
  EXPECT_EQ(q.push(7).reason, RejectReason::kClosed);
  EXPECT_TRUE(q.drain().empty());
  EXPECT_TRUE(q.drain().empty());  // drain after close stays legal
}

TEST(BoundedQueueTest, ClosedQueueStillReportsCapacityRejectionsAsClosed) {
  // kClosed wins over kCapacity: the queue checks the shutdown flag
  // first, so producers see a stable reason during teardown.
  BoundedQueue<int> q(1);
  (void)q.push(1);  // full
  q.close();
  EXPECT_EQ(q.push(2).reason, RejectReason::kClosed);
}

TEST(BoundedQueueTest, ConcurrentProducersNeverExceedCapacityOrLoseItems) {
  constexpr std::size_t kCapacity = 64;
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 200;
  BoundedQueue<int> q(kCapacity);

  dsched::atomic<int> admitted{0};
  dsched::atomic<int> rejected{0};
  std::vector<dsched::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        if (q.push(p * kPerProducer + i).admitted()) {
          ++admitted;
        } else {
          ++rejected;
        }
      }
    });
  }
  // Single consumer drains concurrently (the MPSC contract).
  dsched::atomic<bool> stop{false};
  std::size_t drained = 0;
  dsched::thread consumer([&] {
    while (!stop.load()) drained += q.drain().size();
  });
  for (auto& t : producers) t.join();
  stop.store(true);
  consumer.join();
  drained += q.drain().size();

  EXPECT_EQ(admitted.load() + rejected.load(), kProducers * kPerProducer);
  EXPECT_EQ(drained, static_cast<std::size_t>(admitted.load()));
}

}  // namespace
}  // namespace decloud

#include "common/interner.hpp"

#include <gtest/gtest.h>

#include "common/ensure.hpp"

namespace decloud {
namespace {

TEST(Interner, AssignsDenseIndices) {
  Interner in;
  EXPECT_EQ(in.intern("cpu"), 0u);
  EXPECT_EQ(in.intern("memory"), 1u);
  EXPECT_EQ(in.intern("disk"), 2u);
  EXPECT_EQ(in.size(), 3u);
}

TEST(Interner, InternIsIdempotent) {
  Interner in;
  const auto a = in.intern("latency");
  const auto b = in.intern("latency");
  EXPECT_EQ(a, b);
  EXPECT_EQ(in.size(), 1u);
}

TEST(Interner, FindDoesNotCreate) {
  Interner in;
  EXPECT_EQ(in.find("sgx"), Interner::npos);
  EXPECT_EQ(in.size(), 0u);
  in.intern("sgx");
  EXPECT_EQ(in.find("sgx"), 0u);
}

TEST(Interner, NameRoundtrip) {
  Interner in;
  const auto idx = in.intern("reputation");
  EXPECT_EQ(in.name(idx), "reputation");
}

TEST(Interner, NameOutOfRangeThrows) {
  Interner in;
  EXPECT_THROW(in.name(0), precondition_error);
  in.intern("x");
  EXPECT_THROW(in.name(1), precondition_error);
}

TEST(Interner, EmptyStringIsValidKey) {
  Interner in;
  const auto idx = in.intern("");
  EXPECT_EQ(in.find(""), idx);
  EXPECT_EQ(in.name(idx), "");
}

TEST(Interner, RoundTripsEveryIndexThroughNameAndBack) {
  // The resource-type registry is persisted by name and reloaded by
  // re-interning: intern(name(i)) == i must hold for every live index.
  Interner in;
  const char* kTypes[] = {"cpu", "memory", "disk", "latency", "sgx", "reputation"};
  for (const char* t : kTypes) in.intern(t);
  for (std::uint32_t i = 0; i < in.size(); ++i) {
    EXPECT_EQ(in.intern(in.name(i)), i);
    EXPECT_EQ(in.find(in.name(i)), i);
  }
  EXPECT_EQ(in.size(), std::size(kTypes));  // round-trip must not grow the table
}

TEST(Interner, ManyKeysStayStable) {
  Interner in;
  // Built by append (not operator+ chaining) to sidestep a GCC 12
  // -Wrestrict false positive on the temporary-chaining form.
  for (int i = 0; i < 1000; ++i) {
    std::string key = "k";
    key += std::to_string(i);
    in.intern(key);
  }
  EXPECT_EQ(in.size(), 1000u);
  EXPECT_EQ(in.find("k0"), 0u);
  EXPECT_EQ(in.find("k999"), 999u);
  EXPECT_EQ(in.name(500), "k500");
}

}  // namespace
}  // namespace decloud

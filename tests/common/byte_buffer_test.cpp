#include "common/byte_buffer.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/ensure.hpp"

namespace decloud {
namespace {

TEST(ByteBuffer, RoundtripsScalars) {
  ByteWriter w;
  w.write_u8(0xab);
  w.write_u32(0xdeadbeef);
  w.write_u64(0x0123456789abcdefULL);
  w.write_i64(-42);
  w.write_double(3.141592653589793);

  ByteReader r({w.bytes().data(), w.bytes().size()});
  EXPECT_EQ(r.read_u8(), 0xab);
  EXPECT_EQ(r.read_u32(), 0xdeadbeefu);
  EXPECT_EQ(r.read_u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.read_i64(), -42);
  EXPECT_DOUBLE_EQ(r.read_double(), 3.141592653589793);
  EXPECT_TRUE(r.exhausted());
}

TEST(ByteBuffer, RoundtripsSpecialDoubles) {
  ByteWriter w;
  w.write_double(std::numeric_limits<double>::infinity());
  w.write_double(-std::numeric_limits<double>::infinity());
  w.write_double(std::numeric_limits<double>::quiet_NaN());
  w.write_double(-0.0);
  w.write_double(std::numeric_limits<double>::denorm_min());

  ByteReader r({w.bytes().data(), w.bytes().size()});
  EXPECT_TRUE(std::isinf(r.read_double()));
  EXPECT_TRUE(std::isinf(r.read_double()));
  EXPECT_TRUE(std::isnan(r.read_double()));
  const double neg_zero = r.read_double();
  EXPECT_EQ(neg_zero, 0.0);
  EXPECT_TRUE(std::signbit(neg_zero));
  EXPECT_EQ(r.read_double(), std::numeric_limits<double>::denorm_min());
}

TEST(ByteBuffer, RoundtripsBytesAndStrings) {
  ByteWriter w;
  const std::vector<std::uint8_t> blob = {1, 2, 3, 0, 255};
  w.write_bytes(blob);
  w.write_string("hello");
  w.write_string("");

  ByteReader r({w.bytes().data(), w.bytes().size()});
  EXPECT_EQ(r.read_bytes(), blob);
  EXPECT_EQ(r.read_string(), "hello");
  EXPECT_EQ(r.read_string(), "");
  EXPECT_TRUE(r.exhausted());
}

TEST(ByteBuffer, LittleEndianLayout) {
  ByteWriter w;
  w.write_u32(0x01020304);
  const auto& b = w.bytes();
  ASSERT_EQ(b.size(), 4u);
  EXPECT_EQ(b[0], 0x04);
  EXPECT_EQ(b[1], 0x03);
  EXPECT_EQ(b[2], 0x02);
  EXPECT_EQ(b[3], 0x01);
}

TEST(ByteBuffer, TruncatedScalarThrows) {
  const std::vector<std::uint8_t> short_buf = {1, 2};
  ByteReader r({short_buf.data(), short_buf.size()});
  EXPECT_THROW(r.read_u32(), precondition_error);
}

TEST(ByteBuffer, TruncatedPayloadThrows) {
  ByteWriter w;
  w.write_u32(100);  // claims 100 bytes follow
  ByteReader r({w.bytes().data(), w.bytes().size()});
  EXPECT_THROW(r.read_bytes(), precondition_error);
}

TEST(ByteBuffer, EmptyReaderState) {
  ByteReader r({});
  EXPECT_TRUE(r.exhausted());
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_THROW(r.read_u8(), precondition_error);
}

TEST(ByteBuffer, RemainingCountsDown) {
  ByteWriter w;
  w.write_u64(1);
  w.write_u64(2);
  ByteReader r({w.bytes().data(), w.bytes().size()});
  EXPECT_EQ(r.remaining(), 16u);
  (void)r.read_u64();
  EXPECT_EQ(r.remaining(), 8u);
  (void)r.read_u64();
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(ByteBuffer, TakeMovesBuffer) {
  ByteWriter w;
  w.write_u8(7);
  const auto bytes = std::move(w).take();
  ASSERT_EQ(bytes.size(), 1u);
  EXPECT_EQ(bytes[0], 7);
}

}  // namespace
}  // namespace decloud

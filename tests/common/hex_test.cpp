#include "common/hex.hpp"

#include <gtest/gtest.h>

#include "common/ensure.hpp"

namespace decloud {
namespace {

TEST(Hex, EncodesKnownBytes) {
  const std::vector<std::uint8_t> bytes = {0x00, 0x01, 0x0f, 0x10, 0xab, 0xff};
  EXPECT_EQ(to_hex(bytes), "00010f10abff");
}

TEST(Hex, EmptyRoundtrip) {
  EXPECT_EQ(to_hex({}), "");
  EXPECT_TRUE(from_hex("").empty());
}

TEST(Hex, DecodeIsCaseInsensitive) {
  const auto lower = from_hex("deadbeef");
  const auto upper = from_hex("DEADBEEF");
  EXPECT_EQ(lower, upper);
  EXPECT_EQ(lower, (std::vector<std::uint8_t>{0xde, 0xad, 0xbe, 0xef}));
}

TEST(Hex, RoundtripAllByteValues) {
  std::vector<std::uint8_t> bytes(256);
  for (int i = 0; i < 256; ++i) bytes[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(i);
  EXPECT_EQ(from_hex(to_hex(bytes)), bytes);
}

TEST(Hex, RejectsOddLength) { EXPECT_THROW(from_hex("abc"), precondition_error); }

TEST(Hex, RejectsNonHexCharacters) {
  EXPECT_THROW(from_hex("zz"), precondition_error);
  EXPECT_THROW(from_hex("0g"), precondition_error);
  EXPECT_THROW(from_hex(" 0"), precondition_error);
}

}  // namespace
}  // namespace decloud

// declint:allow-file(raw-sync-primitive) — this test PROVES the wrappers
// alias the raw std types in default builds, so it must name them.

#include "dsched/sync.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace decloud {
namespace {

#if defined(DECLOUD_DSCHED) && DECLOUD_DSCHED

// Instrumented build: the wrappers are real classes.  Outside a model
// run (no explorer active on this thread) every operation must fall
// through to the real std primitive, so ordinary multithreaded code —
// including this whole test binary — behaves exactly as in the default
// build.

TEST(DschedSyncTest, InstrumentedBuildReportsEnabled) { EXPECT_TRUE(dsched::kEnabled); }

TEST(DschedSyncTest, FallbackMutexExcludesConcurrentCriticalSections) {
  dsched::mutex m;
  int counter = 0;
  std::vector<dsched::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back(dsched::thread([&] {
      for (int i = 0; i < 1000; ++i) {
        const std::lock_guard<dsched::mutex> lock(m);
        ++counter;
      }
    }));
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, 4000);
}

TEST(DschedSyncTest, FallbackTryLockReflectsOwnership) {
  dsched::mutex m;
  EXPECT_TRUE(m.try_lock());
  dsched::thread other([&] { EXPECT_FALSE(m.try_lock()); });
  other.join();
  m.unlock();
}

TEST(DschedSyncTest, FallbackAtomicOpsMatchStdSemantics) {
  dsched::atomic<int> a{5};
  EXPECT_EQ(a.load(), 5);
  EXPECT_EQ(a.fetch_add(3), 5);
  EXPECT_EQ(a.load(), 8);
  EXPECT_EQ(a.exchange(1), 8);
  int expected = 1;
  EXPECT_TRUE(a.compare_exchange_strong(expected, 9));
  EXPECT_EQ(a.load(), 9);
  expected = 1;
  EXPECT_FALSE(a.compare_exchange_strong(expected, 0));
  EXPECT_EQ(expected, 9);
  a = 2;
  EXPECT_EQ(++a, 3);
  EXPECT_EQ(a++, 3);
  EXPECT_EQ(a += 6, 10);
  EXPECT_EQ(--a, 9);
  EXPECT_EQ(static_cast<int>(a), 9);
}

TEST(DschedSyncTest, FallbackCvWaitWakesOnNotify) {
  dsched::mutex m;
  dsched::condition_variable cv;
  bool ready = false;
  bool observed = false;
  dsched::thread waiter([&] {
    std::unique_lock<dsched::mutex> lock(m);
    cv.wait(lock, [&] { return ready; });
    observed = true;
  });
  {
    const std::lock_guard<dsched::mutex> lock(m);
    ready = true;
  }
  cv.notify_one();
  waiter.join();
  EXPECT_TRUE(observed);
}

TEST(DschedSyncTest, ThreadHandleIsMovableAndJoinable) {
  dsched::thread t([] {});
  EXPECT_TRUE(t.joinable());
  dsched::thread moved(std::move(t));
  EXPECT_FALSE(t.joinable());  // NOLINT(bugprone-use-after-move): post-move state is specified
  EXPECT_TRUE(moved.joinable());
  moved.join();
  EXPECT_FALSE(moved.joinable());
  EXPECT_GE(dsched::thread::hardware_concurrency(), 0u);
}

#else  // !DECLOUD_DSCHED

// Default build: zero overhead means the wrappers ARE the std types —
// not lookalikes, the very same types.  Any accidental indirection
// would break these at compile time.

TEST(DschedSyncTest, DefaultBuildReportsDisabled) { EXPECT_FALSE(dsched::kEnabled); }

static_assert(std::is_same_v<dsched::mutex, std::mutex>,
              "dsched::mutex must alias std::mutex in default builds");
static_assert(std::is_same_v<dsched::condition_variable, std::condition_variable>,
              "dsched::condition_variable must alias std::condition_variable");
static_assert(std::is_same_v<dsched::atomic<int>, std::atomic<int>>,
              "dsched::atomic must alias std::atomic in default builds");
static_assert(std::is_same_v<dsched::atomic<std::size_t>, std::atomic<std::size_t>>,
              "dsched::atomic must alias std::atomic in default builds");
static_assert(std::is_same_v<dsched::thread, std::thread>,
              "dsched::thread must alias std::thread in default builds");

TEST(DschedSyncTest, AliasesAreTheStdTypes) {
  // The static_asserts above are the real test; this keeps the suite
  // non-empty so a filter on DschedSyncTest always runs something.
  SUCCEED();
}

#endif  // DECLOUD_DSCHED

}  // namespace
}  // namespace decloud

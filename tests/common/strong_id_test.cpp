#include "common/strong_id.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <unordered_set>

#include "common/types.hpp"

namespace decloud {
namespace {

TEST(StrongId, DefaultIsZero) {
  ClientId id;
  EXPECT_EQ(id.value(), 0u);
}

TEST(StrongId, ValueRoundtrip) {
  ClientId id(42);
  EXPECT_EQ(id.value(), 42u);
}

TEST(StrongId, Ordering) {
  EXPECT_LT(ClientId(1), ClientId(2));
  EXPECT_EQ(ClientId(7), ClientId(7));
  EXPECT_NE(ClientId(7), ClientId(8));
  EXPECT_GE(ClientId(9), ClientId(9));
}

TEST(StrongId, DistinctTagsAreDistinctTypes) {
  static_assert(!std::is_same_v<ClientId, ProviderId>);
  static_assert(!std::is_same_v<RequestId, OfferId>);
  static_assert(!std::is_convertible_v<ClientId, ProviderId>);
  static_assert(!std::is_convertible_v<std::uint64_t, ClientId>);  // explicit ctor
}

TEST(StrongId, HashWorksInUnorderedContainers) {
  std::unordered_set<ClientId> set;
  set.insert(ClientId(1));
  set.insert(ClientId(2));
  set.insert(ClientId(1));
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.contains(ClientId(2)));
  EXPECT_FALSE(set.contains(ClientId(3)));
}

TEST(StrongId, StreamsUnderlyingValue) {
  std::ostringstream os;
  os << OfferId(99);
  EXPECT_EQ(os.str(), "99");
}

}  // namespace
}  // namespace decloud

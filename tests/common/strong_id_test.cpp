#include "common/strong_id.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <sstream>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/types.hpp"

namespace decloud {
namespace {

TEST(StrongId, DefaultIsZero) {
  ClientId id;
  EXPECT_EQ(id.value(), 0u);
}

TEST(StrongId, ValueRoundtrip) {
  ClientId id(42);
  EXPECT_EQ(id.value(), 42u);
}

TEST(StrongId, Ordering) {
  EXPECT_LT(ClientId(1), ClientId(2));
  EXPECT_EQ(ClientId(7), ClientId(7));
  EXPECT_NE(ClientId(7), ClientId(8));
  EXPECT_GE(ClientId(9), ClientId(9));
}

TEST(StrongId, DistinctTagsAreDistinctTypes) {
  static_assert(!std::is_same_v<ClientId, ProviderId>);
  static_assert(!std::is_same_v<RequestId, OfferId>);
  static_assert(!std::is_convertible_v<ClientId, ProviderId>);
  static_assert(!std::is_convertible_v<std::uint64_t, ClientId>);  // explicit ctor
}

TEST(StrongId, HashWorksInUnorderedContainers) {
  std::unordered_set<ClientId> set;
  set.insert(ClientId(1));
  set.insert(ClientId(2));
  set.insert(ClientId(1));
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.contains(ClientId(2)));
  EXPECT_FALSE(set.contains(ClientId(3)));
}

TEST(StrongId, StreamsUnderlyingValue) {
  std::ostringstream os;
  os << OfferId(99);
  EXPECT_EQ(os.str(), "99");
}

TEST(StrongId, HashAgreesWithUnderlyingValue) {
  // Sealed-bid codecs hash ids as raw uint64s; the strong-id hash must
  // stay consistent with that so unordered lookups agree across layers.
  EXPECT_EQ(std::hash<ClientId>{}(ClientId(7)), std::hash<std::uint64_t>{}(7u));
  EXPECT_EQ(std::hash<ProviderId>{}(ProviderId(0)), std::hash<std::uint64_t>{}(0u));
}

TEST(StrongId, HashConsistentWithEquality) {
  EXPECT_EQ(std::hash<RequestId>{}(RequestId(12)), std::hash<RequestId>{}(RequestId(12)));
  EXPECT_NE(RequestId(12), RequestId(13));  // equal hashes would be legal, equal ids are not
}

TEST(StrongId, WorksAsUnorderedMapKey) {
  std::unordered_map<OfferId, int> capacity;
  capacity[OfferId(5)] = 3;
  capacity[OfferId(9)] = 1;
  capacity[OfferId(5)] += 2;
  EXPECT_EQ(capacity.size(), 2u);
  EXPECT_EQ(capacity.at(OfferId(5)), 5);
}

TEST(StrongId, SortedOrderMatchesUnderlying) {
  std::vector<ClientId> ids = {ClientId(9), ClientId(1), ClientId(5)};
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids, (std::vector<ClientId>{ClientId(1), ClientId(5), ClientId(9)}));
}

TEST(StrongId, MaxValueRoundtrips) {
  const auto max = std::numeric_limits<std::uint64_t>::max();
  EXPECT_EQ(ClientId(max).value(), max);
  EXPECT_LT(ClientId(max - 1), ClientId(max));
}

}  // namespace
}  // namespace decloud

#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

#include "common/ensure.hpp"

namespace decloud {
namespace {

TEST(SplitMix64, KnownSequenceIsStable) {
  SplitMix64 sm(0);
  const std::uint64_t a = sm.next();
  const std::uint64_t b = sm.next();
  SplitMix64 sm2(0);
  EXPECT_EQ(a, sm2.next());
  EXPECT_EQ(b, sm2.next());
  EXPECT_NE(a, b);
}

TEST(Rng, SameSeedSameStream) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, FromBytesIsDeterministic) {
  const std::array<std::uint8_t, 4> evidence = {1, 2, 3, 4};
  Rng a = Rng::from_bytes(evidence);
  Rng b = Rng::from_bytes(evidence);
  EXPECT_EQ(a.next_u64(), b.next_u64());

  const std::array<std::uint8_t, 4> other = {1, 2, 3, 5};
  Rng c = Rng::from_bytes(other);
  Rng a2 = Rng::from_bytes(evidence);
  EXPECT_NE(a2.next_u64(), c.next_u64());
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(7);
  for (const std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowOneAlwaysZero) {
  Rng rng(7);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, NextBelowZeroThrows) {
  Rng rng(7);
  EXPECT_THROW(rng.next_below(0), precondition_error);
}

TEST(Rng, NextBelowCoversRange) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.next_below(8));
  EXPECT_EQ(seen.size(), 8u);  // all residues appear in 500 draws whp
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, UniformRangeAndMean) {
  Rng rng(5);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double d = rng.uniform(2.0, 4.0);
    EXPECT_GE(d, 2.0);
    EXPECT_LT(d, 4.0);
    sum += d;
  }
  EXPECT_NEAR(sum / n, 3.0, 0.02);
}

TEST(Rng, UniformRejectsInvertedRange) {
  Rng rng(5);
  EXPECT_THROW(rng.uniform(4.0, 2.0), precondition_error);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo = saw_lo || v == -2;
    saw_hi = saw_hi || v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  const int n = 50000;
  double sum = 0.0;
  double sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double d = rng.normal(10.0, 2.0);
    sum += d;
    sq += d * d;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(Rng, LognormalIsPositive) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(rng.lognormal(0.0, 1.0), 0.0);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(19);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, ExponentialRejectsNonPositiveRate) {
  Rng rng(19);
  EXPECT_THROW(rng.exponential(0.0), precondition_error);
  EXPECT_THROW(rng.exponential(-1.0), precondition_error);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(23);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, BernoulliDegenerateProbabilities) {
  Rng rng(23);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
  EXPECT_THROW(rng.bernoulli(1.5), precondition_error);
  EXPECT_THROW(rng.bernoulli(-0.1), precondition_error);
}

TEST(Rng, WeightedIndexFollowsWeights) {
  Rng rng(29);
  const std::vector<double> weights = {1.0, 0.0, 3.0};
  std::array<int, 3> counts{};
  const int n = 40000;
  for (int i = 0; i < n; ++i) counts[rng.weighted_index(weights)]++;
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(Rng, WeightedIndexPreconditions) {
  Rng rng(29);
  const std::vector<double> empty;
  EXPECT_THROW(rng.weighted_index(empty), precondition_error);
  const std::vector<double> zeros = {0.0, 0.0};
  EXPECT_THROW(rng.weighted_index(zeros), precondition_error);
  const std::vector<double> negative = {1.0, -1.0};
  EXPECT_THROW(rng.weighted_index(negative), precondition_error);
}

TEST(Rng, ShuffleIsPermutationAndDeterministic) {
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> w = v;
  Rng a(31);
  Rng b(31);
  a.shuffle(v);
  b.shuffle(w);
  EXPECT_EQ(v, w);  // deterministic
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  std::vector<int> expect(50);
  std::iota(expect.begin(), expect.end(), 0);
  EXPECT_EQ(sorted, expect);  // permutation
}

TEST(Rng, ShuffleEmptyAndSingleton) {
  Rng rng(37);
  std::vector<int> empty;
  rng.shuffle(empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one = {42};
  rng.shuffle(one);
  EXPECT_EQ(one, std::vector<int>{42});
}

/// The generator must satisfy uniform_random_bit_generator for std
/// facilities used in non-consensus code.
static_assert(std::uniform_random_bit_generator<Rng>);

}  // namespace
}  // namespace decloud

#include "ledger/miner.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "auction/verify.hpp"
#include "ledger/codec.hpp"
#include "ledger/participant.hpp"

namespace decloud::ledger {
namespace {

struct Round {
  Rng rng{11};
  ConsensusParams params{.difficulty_bits = 8};
  Miner miner{params};
  Participant alice{rng};
  Participant bob{rng};
  BlockPreamble preamble;
  std::vector<KeyReveal> reveals;

  Round() {
    std::vector<SealedBid> bids;
    for (std::uint64_t i = 0; i < 4; ++i) {
      auction::Request r;
      r.id = RequestId(i);
      r.client = ClientId(i % 2);
      r.submitted = static_cast<Time>(i);
      r.resources.set(auction::ResourceSchema::kCpu, 1.0);
      r.window_end = 7200;
      r.duration = 3600;
      r.bid = 1.0 + static_cast<double>(i);
      bids.push_back(alice.submit_request(r, rng));
    }
    for (std::uint64_t i = 0; i < 3; ++i) {
      auction::Offer o;
      o.id = OfferId(i);
      o.provider = ProviderId(i);
      o.submitted = static_cast<Time>(i);
      o.resources.set(auction::ResourceSchema::kCpu, 4.0);
      o.window_end = 86400;
      o.bid = 0.1 + 0.1 * static_cast<double>(i);
      bids.push_back(bob.submit_offer(o, rng));
    }
    preamble = *miner.mine_preamble(std::move(bids), crypto::Digest{}, 0, 1000);
    auto ra = alice.on_preamble(preamble);
    auto rb = bob.on_preamble(preamble);
    reveals = ra;
    reveals.insert(reveals.end(), rb.begin(), rb.end());
  }
};

TEST(Miner, MinedPreambleValidates) {
  Round round;
  EXPECT_TRUE(validate_preamble(round.preamble, round.params.difficulty_bits));
  EXPECT_EQ(round.preamble.sealed_bids.size(), 7u);
}

TEST(Miner, OpenBlockRecoversAllBids) {
  Round round;
  const OpenedBlock opened = Miner::open_block(round.preamble, round.reveals);
  EXPECT_EQ(opened.snapshot.requests.size(), 4u);
  EXPECT_EQ(opened.snapshot.offers.size(), 3u);
  EXPECT_TRUE(opened.unopened.empty());
  EXPECT_EQ(opened.request_source.size(), 4u);
  EXPECT_EQ(opened.offer_source.size(), 3u);
}

TEST(Miner, MissingKeysLeaveBidsUnopened) {
  Round round;
  // Withhold the last reveal: that bid stays sealed and out of the round.
  auto partial = round.reveals;
  partial.pop_back();
  const OpenedBlock opened = Miner::open_block(round.preamble, partial);
  EXPECT_EQ(opened.unopened.size(), 1u);
  EXPECT_EQ(opened.snapshot.requests.size() + opened.snapshot.offers.size(), 6u);
}

TEST(Miner, WrongKeyLeavesBidUnopened) {
  Round round;
  auto corrupted = round.reveals;
  corrupted[0].key[0] ^= 0xff;
  const OpenedBlock opened = Miner::open_block(round.preamble, corrupted);
  EXPECT_EQ(opened.unopened.size(), 1u);
}

TEST(Miner, AllocationSeedComesFromBlockHash) {
  Round round;
  const std::uint64_t seed = Miner::allocation_seed(round.preamble);
  std::uint64_t expect = 0;
  for (int i = 0; i < 8; ++i) {
    expect = (expect << 8) | round.preamble.hash()[static_cast<std::size_t>(i)];
  }
  EXPECT_EQ(seed, expect);
}

TEST(Miner, ComputedBodyPassesVerification) {
  Round round;
  const BlockBody body = round.miner.compute_body(round.preamble, round.reveals);
  EXPECT_TRUE(round.miner.verify_body(round.preamble, body));
}

TEST(Miner, AllocationInBodySatisfiesInvariants) {
  Round round;
  const BlockBody body = round.miner.compute_body(round.preamble, round.reveals);
  const OpenedBlock opened = Miner::open_block(round.preamble, body.revealed_keys);
  const auto result = decode_allocation({body.allocation.data(), body.allocation.size()},
                                        opened.snapshot.requests.size(),
                                        opened.snapshot.offers.size());
  EXPECT_TRUE(auction::verify_invariants(opened.snapshot, result, round.params.auction).ok());
}

TEST(Miner, VerifyRejectsTamperedAllocation) {
  Round round;
  BlockBody body = round.miner.compute_body(round.preamble, round.reveals);
  ASSERT_FALSE(body.allocation.empty());
  body.allocation.back() ^= 0x01;  // flip one byte of the allocation
  EXPECT_FALSE(round.miner.verify_body(round.preamble, body));
}

TEST(Miner, VerifyRejectsDroppedKeys) {
  // The producer excluding participants (by "losing" their keys) changes
  // the replayed snapshot: the claimed allocation — computed with all keys
  // — no longer matches the replay over the reduced key set.
  Round round;
  BlockBody body = round.miner.compute_body(round.preamble, round.reveals);
  // Drop every request key: the replay has offers only, so the claimed
  // non-empty allocation cannot reproduce.
  BlockBody tampered = body;
  tampered.revealed_keys.erase(tampered.revealed_keys.begin(),
                               tampered.revealed_keys.begin() + 4);
  EXPECT_FALSE(round.miner.verify_body(round.preamble, tampered));
}

TEST(Miner, DroppingAnIrrelevantKeyIsDetectedByItsOwner) {
  // Dropping a key whose bid never trades can leave the allocation bytes
  // unchanged — replay verification alone may accept it.  The protocol's
  // defence is participant-side: the owner sees its key missing from the
  // body and knows it was excluded (Section III-B).
  Round round;
  const BlockBody body = round.miner.compute_body(round.preamble, round.reveals);
  std::vector<crypto::Digest> in_body;
  for (const auto& kr : body.revealed_keys) in_body.push_back(kr.bid_digest);
  // Every reveal the participants sent is present in the honest body.
  for (const auto& kr : round.reveals) {
    EXPECT_NE(std::find(in_body.begin(), in_body.end(), kr.bid_digest), in_body.end());
  }
}

TEST(Miner, VerifyRejectsDivergentConsensusConfig) {
  Round round;
  const BlockBody body = round.miner.compute_body(round.preamble, round.reveals);
  ConsensusParams other = round.params;
  other.auction.best_offer_ratio = 0.1;  // different clustering
  other.auction.max_best_offers = 16;
  const Miner dissenter(other);
  // A dissenting miner either rejects (different allocation) or happens to
  // produce the same bytes; for this workload the clustering differs.
  EXPECT_FALSE(dissenter.verify_body(round.preamble, body) &&
               !round.miner.verify_body(round.preamble, body));
}

TEST(Miner, PowExhaustionReturnsNullopt) {
  ConsensusParams params{.difficulty_bits = 40};
  params.max_pow_attempts = 10;
  const Miner miner(params);
  EXPECT_FALSE(miner.mine_preamble({}, crypto::Digest{}, 0, 0).has_value());
}

}  // namespace
}  // namespace decloud::ledger

#include "ledger/participant.hpp"

#include <gtest/gtest.h>

#include "ledger/codec.hpp"

namespace decloud::ledger {
namespace {

auction::Request simple_request(std::uint64_t id) {
  auction::Request r;
  r.id = RequestId(id);
  r.client = ClientId(id);
  r.resources.set(auction::ResourceSchema::kCpu, 1.0);
  r.window_end = 7200;
  r.duration = 3600;
  r.bid = 1.0;
  return r;
}

auction::Offer simple_offer(std::uint64_t id) {
  auction::Offer o;
  o.id = OfferId(id);
  o.provider = ProviderId(id);
  o.resources.set(auction::ResourceSchema::kCpu, 4.0);
  o.window_end = 86400;
  o.bid = 0.5;
  return o;
}

BlockPreamble preamble_over(std::vector<SealedBid> bids) {
  BlockPreamble p;
  p.header.bids_root = bids_merkle_root(bids);
  p.sealed_bids = std::move(bids);
  const auto hb = p.header.bytes();
  p.pow = *crypto::solve_pow({hb.data(), hb.size()}, 8);
  return p;
}

TEST(Participant, SubmittedBidsAreSignedAndSealed) {
  Rng rng(1);
  Participant wallet(rng);
  const SealedBid bid = wallet.submit_request(simple_request(1), rng);
  EXPECT_EQ(bid.kind, BidKind::kRequest);
  EXPECT_EQ(bid.sender, wallet.public_key());
  EXPECT_TRUE(verify_sealed_bid(bid));
  EXPECT_EQ(wallet.pending_bids(), 1u);
}

TEST(Participant, DistinctTemporaryKeysPerBid) {
  Rng rng(2);
  Participant wallet(rng);
  const SealedBid a = wallet.submit_request(simple_request(1), rng);
  const SealedBid b = wallet.submit_request(simple_request(1), rng);
  // Same plaintext, fresh key+nonce → different ciphertexts and digests.
  EXPECT_NE(a.ciphertext, b.ciphertext);
  EXPECT_NE(a.digest(), b.digest());
}

TEST(Participant, RevealsKeysOnlyForOwnIncludedBids) {
  Rng rng(3);
  Participant alice(rng);
  Participant bob(rng);
  const SealedBid a1 = alice.submit_request(simple_request(1), rng);
  const SealedBid a2 = alice.submit_offer(simple_offer(2), rng);
  const SealedBid b1 = bob.submit_request(simple_request(3), rng);

  // The preamble includes a1 and b1 but not a2.
  const BlockPreamble p = preamble_over({a1, b1});
  const auto alice_reveals = alice.on_preamble(p);
  ASSERT_EQ(alice_reveals.size(), 1u);
  EXPECT_EQ(alice_reveals[0].bid_digest, a1.digest());
  EXPECT_EQ(alice.pending_bids(), 1u);  // a2 still pending

  const auto bob_reveals = bob.on_preamble(p);
  ASSERT_EQ(bob_reveals.size(), 1u);
  EXPECT_EQ(bob_reveals[0].bid_digest, b1.digest());
}

TEST(Participant, RevealedKeyOpensTheBid) {
  Rng rng(4);
  Participant wallet(rng);
  const auction::Request r = simple_request(5);
  const SealedBid bid = wallet.submit_request(r, rng);
  const BlockPreamble p = preamble_over({bid});
  const auto reveals = wallet.on_preamble(p);
  ASSERT_EQ(reveals.size(), 1u);
  const auto opened = open_bid(bid, reveals[0].key);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(decode_request(*opened).id, r.id);
  EXPECT_DOUBLE_EQ(decode_request(*opened).bid, r.bid);
}

TEST(Participant, KeysRetiredAfterReveal) {
  Rng rng(5);
  Participant wallet(rng);
  const SealedBid bid = wallet.submit_request(simple_request(1), rng);
  const BlockPreamble p = preamble_over({bid});
  EXPECT_EQ(wallet.on_preamble(p).size(), 1u);
  EXPECT_EQ(wallet.pending_bids(), 0u);
  EXPECT_TRUE(wallet.on_preamble(p).empty());  // second preamble: nothing left
}

TEST(Participant, IgnoresForeignPreambles) {
  Rng rng(6);
  Participant wallet(rng);
  Participant other(rng);
  (void)wallet.submit_request(simple_request(1), rng);
  const SealedBid foreign = other.submit_request(simple_request(2), rng);
  const BlockPreamble p = preamble_over({foreign});
  EXPECT_TRUE(wallet.on_preamble(p).empty());
  EXPECT_EQ(wallet.pending_bids(), 1u);
}

}  // namespace
}  // namespace decloud::ledger

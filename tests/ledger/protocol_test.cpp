#include "ledger/protocol.hpp"

#include <gtest/gtest.h>

#include "auction/verify.hpp"
#include "common/rng.hpp"

namespace decloud::ledger {
namespace {

constexpr unsigned kDifficulty = 8;

ConsensusParams params() { return {.difficulty_bits = kDifficulty}; }

auction::Request simple_request(std::uint64_t id, Money bid) {
  auction::Request r;
  r.id = RequestId(id);
  r.client = ClientId(id);
  r.submitted = static_cast<Time>(id);
  r.resources.set(auction::ResourceSchema::kCpu, 1.0);
  r.window_end = 7200;
  r.duration = 3600;
  r.bid = bid;
  return r;
}

auction::Offer simple_offer(std::uint64_t id, Money bid) {
  auction::Offer o;
  o.id = OfferId(id);
  o.provider = ProviderId(id);
  o.submitted = static_cast<Time>(id);
  o.resources.set(auction::ResourceSchema::kCpu, 4.0);
  o.window_end = 86400;
  o.bid = bid;
  return o;
}

TEST(Mempool, DrainsInSubmissionOrder) {
  Mempool pool;
  Rng rng(1);
  Participant wallet(rng);
  pool.submit(wallet.submit_request(simple_request(1, 1.0), rng));
  pool.submit(wallet.submit_request(simple_request(2, 2.0), rng));
  pool.submit(wallet.submit_request(simple_request(3, 3.0), rng));
  EXPECT_EQ(pool.size(), 3u);
  const auto two = pool.drain(2);
  EXPECT_EQ(two.size(), 2u);
  EXPECT_EQ(pool.size(), 1u);
  const auto rest = pool.drain();
  EXPECT_EQ(rest.size(), 1u);
  EXPECT_EQ(pool.size(), 0u);
}

TEST(Mempool, RejectsDuplicateSealedBids) {
  Mempool pool;
  Rng rng(9);
  Participant wallet(rng);
  SealedBid bid = wallet.submit_request(simple_request(1, 1.0), rng);
  const SealedBid copy = bid;
  EXPECT_EQ(pool.submit(std::move(bid)), Mempool::Admission::kAccepted);
  EXPECT_EQ(pool.submit(copy), Mempool::Admission::kDuplicate);
  EXPECT_EQ(pool.size(), 1u);  // the duplicate never pooled

  // Draining forgets the digests: the same bid may try again next round.
  (void)pool.drain();
  EXPECT_EQ(pool.submit(copy), Mempool::Admission::kAccepted);
  EXPECT_EQ(pool.size(), 1u);

  // A partial drain only forgets what left the pool.
  Mempool partial;
  SealedBid first = wallet.submit_request(simple_request(2, 1.0), rng);
  const SealedBid second = wallet.submit_request(simple_request(3, 1.0), rng);
  const SealedBid first_copy = first;
  partial.submit(std::move(first));
  partial.submit(second);
  EXPECT_EQ(partial.drain(1).size(), 1u);
  EXPECT_EQ(partial.submit(first_copy), Mempool::Admission::kAccepted);  // left with the drain
  EXPECT_EQ(partial.submit(second), Mempool::Admission::kDuplicate);     // still pooled
}

TEST(Protocol, FullRoundProducesAcceptedBlock) {
  LedgerProtocol protocol(params());
  Rng rng(2);
  Participant clients(rng);
  Participant providers(rng);
  for (std::uint64_t i = 0; i < 6; ++i) {
    protocol.mempool().submit(
        clients.submit_request(simple_request(i, 1.0 + static_cast<double>(i)), rng));
  }
  for (std::uint64_t i = 0; i < 4; ++i) {
    protocol.mempool().submit(
        providers.submit_offer(simple_offer(i, 0.1 + 0.05 * static_cast<double>(i)), rng));
  }

  const std::vector<Miner> verifiers(3, Miner(params()));
  const RoundOutcome outcome = protocol.run_round({&clients, &providers}, verifiers, 1000);

  EXPECT_TRUE(outcome.block_accepted);
  EXPECT_EQ(outcome.verifier_votes, (std::vector<bool>{true, true, true}));
  EXPECT_EQ(protocol.chain().height(), 1u);
  EXPECT_EQ(outcome.snapshot.requests.size(), 6u);
  EXPECT_EQ(outcome.snapshot.offers.size(), 4u);
  EXPECT_FALSE(outcome.result.matches.empty());
  EXPECT_EQ(outcome.agreements.size(), outcome.result.matches.size());
  // The on-chain allocation satisfies the economic invariants.
  EXPECT_TRUE(auction::verify_invariants(outcome.snapshot, outcome.result,
                                         protocol.params().auction)
                  .ok());
}

TEST(Protocol, EmptyRoundStillExtendsChain) {
  LedgerProtocol protocol(params());
  const RoundOutcome outcome = protocol.run_round({}, {Miner(params())}, 0);
  EXPECT_TRUE(outcome.block_accepted);
  EXPECT_TRUE(outcome.result.matches.empty());
  EXPECT_EQ(protocol.chain().height(), 1u);
}

TEST(Protocol, SuccessiveRoundsLinkBlocks) {
  LedgerProtocol protocol(params());
  Rng rng(3);
  Participant wallet(rng);
  const std::vector<Miner> verifiers(2, Miner(params()));

  protocol.mempool().submit(wallet.submit_request(simple_request(1, 2.0), rng));
  protocol.mempool().submit(wallet.submit_offer(simple_offer(1, 0.1), rng));
  ASSERT_TRUE(protocol.run_round({&wallet}, verifiers, 100).block_accepted);

  protocol.mempool().submit(wallet.submit_request(simple_request(2, 2.0), rng));
  ASSERT_TRUE(protocol.run_round({&wallet}, verifiers, 200).block_accepted);

  ASSERT_EQ(protocol.chain().height(), 2u);
  EXPECT_EQ(protocol.chain().blocks()[1].preamble.header.prev_hash,
            protocol.chain().blocks()[0].preamble.hash());
}

TEST(Protocol, AgreementsFlowThroughContract) {
  LedgerProtocol protocol(params());
  Rng rng(4);
  Participant wallet(rng);
  // Two offers so the price can come from the spare (SBBA luck case).
  protocol.mempool().submit(wallet.submit_request(simple_request(1, 5.0), rng));
  protocol.mempool().submit(wallet.submit_offer(simple_offer(1, 0.1), rng));
  protocol.mempool().submit(wallet.submit_offer(simple_offer(2, 0.2), rng));
  const RoundOutcome outcome = protocol.run_round({&wallet}, {Miner(params())}, 0);
  ASSERT_TRUE(outcome.block_accepted);
  ASSERT_EQ(outcome.agreements.size(), 1u);

  const ClientId client = outcome.snapshot.requests[outcome.result.matches[0].request].client;
  EXPECT_TRUE(protocol.contract().accept(outcome.agreements[0], client));
  EXPECT_EQ(protocol.contract().find(outcome.agreements[0])->state, AgreementState::kActive);
}

TEST(Protocol, AbsentParticipantsBidsStaySealed) {
  // One participant never sees the preamble (offline): its bid cannot be
  // opened and its requests sit out the round.
  LedgerProtocol protocol(params());
  Rng rng(5);
  Participant online(rng);
  Participant offline(rng);
  protocol.mempool().submit(online.submit_request(simple_request(1, 5.0), rng));
  protocol.mempool().submit(offline.submit_request(simple_request(2, 9.0), rng));
  protocol.mempool().submit(online.submit_offer(simple_offer(1, 0.1), rng));
  protocol.mempool().submit(online.submit_offer(simple_offer(2, 0.2), rng));

  // Only `online` participates in the reveal phase.
  const RoundOutcome outcome = protocol.run_round({&online}, {Miner(params())}, 0);
  ASSERT_TRUE(outcome.block_accepted);
  EXPECT_EQ(outcome.snapshot.requests.size(), 1u);  // offline's request missing
  EXPECT_EQ(offline.pending_bids(), 1u);            // still awaiting a preamble
}

}  // namespace
}  // namespace decloud::ledger

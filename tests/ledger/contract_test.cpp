#include "ledger/contract.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace decloud::ledger {
namespace {

/// A snapshot + result with two matches (clients 1 and 2, provider 5).
struct Fixture {
  auction::MarketSnapshot snapshot;
  auction::RoundResult result;
  AgreementContract contract;
  std::vector<ContractId> ids;

  Fixture() {
    for (std::uint64_t i = 1; i <= 2; ++i) {
      auction::Request r;
      r.id = RequestId(i);
      r.client = ClientId(i);
      r.resources.set(auction::ResourceSchema::kCpu, 1.0);
      r.window_end = 7200;
      r.duration = 3600;
      r.bid = 2.0;
      snapshot.requests.push_back(r);
    }
    auction::Offer o;
    o.id = OfferId(5);
    o.provider = ProviderId(5);
    o.resources.set(auction::ResourceSchema::kCpu, 4.0);
    o.window_end = 86400;
    o.bid = 0.5;
    snapshot.offers.push_back(o);

    for (std::size_t i = 0; i < 2; ++i) {
      auction::Match m;
      m.request = i;
      m.offer = 0;
      m.payment = 1.0;
      result.matches.push_back(m);
    }
    result.payment_by_request = {1.0, 1.0};
    result.revenue_by_offer = {2.0};
    ids = contract.register_allocation(0, snapshot, result);
  }
};

TEST(AgreementContract, RegistrationCreatesProposedAgreements) {
  Fixture f;
  ASSERT_EQ(f.ids.size(), 2u);
  const auto a = f.contract.find(f.ids[0]);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->state, AgreementState::kProposed);
  EXPECT_EQ(a->client, ClientId(1));
  EXPECT_EQ(a->provider, ProviderId(5));
  EXPECT_DOUBLE_EQ(a->payment, 1.0);
  EXPECT_FALSE(a->requires_tee);
}

TEST(AgreementContract, AcceptActivates) {
  Fixture f;
  EXPECT_TRUE(f.contract.accept(f.ids[0], ClientId(1)));
  EXPECT_EQ(f.contract.find(f.ids[0])->state, AgreementState::kActive);
}

TEST(AgreementContract, AcceptByWrongClientRejected) {
  // "the client's ID is associated with the particular provider" check.
  Fixture f;
  EXPECT_FALSE(f.contract.accept(f.ids[0], ClientId(2)));
  EXPECT_EQ(f.contract.find(f.ids[0])->state, AgreementState::kProposed);
}

TEST(AgreementContract, UnknownContractRejected) {
  Fixture f;
  EXPECT_FALSE(f.contract.accept(ContractId(999), ClientId(1)));
  EXPECT_FALSE(f.contract.find(ContractId(999)).has_value());
}

TEST(AgreementContract, DoubleAcceptRejected) {
  Fixture f;
  EXPECT_TRUE(f.contract.accept(f.ids[0], ClientId(1)));
  EXPECT_FALSE(f.contract.accept(f.ids[0], ClientId(1)));
}

TEST(AgreementContract, DenyMarksAndFlagsResubmission) {
  Fixture f;
  EXPECT_TRUE(f.contract.deny(f.ids[0], ClientId(1)));
  EXPECT_EQ(f.contract.find(f.ids[0])->state, AgreementState::kDenied);
  ASSERT_EQ(f.contract.pending_resubmissions().size(), 1u);
  EXPECT_EQ(f.contract.pending_resubmissions()[0], ProviderId(5));
}

TEST(AgreementContract, DenyAfterAcceptRejected) {
  Fixture f;
  EXPECT_TRUE(f.contract.accept(f.ids[0], ClientId(1)));
  EXPECT_FALSE(f.contract.deny(f.ids[0], ClientId(1)));
}

TEST(AgreementContract, CompleteRequiresActiveAndProvider) {
  Fixture f;
  EXPECT_FALSE(f.contract.complete(f.ids[0], ProviderId(5)));  // still proposed
  EXPECT_TRUE(f.contract.accept(f.ids[0], ClientId(1)));
  EXPECT_FALSE(f.contract.complete(f.ids[0], ProviderId(4)));  // wrong provider
  EXPECT_TRUE(f.contract.complete(f.ids[0], ProviderId(5)));
  EXPECT_EQ(f.contract.find(f.ids[0])->state, AgreementState::kCompleted);
}

TEST(AgreementContract, TeeRequirementDetected) {
  Fixture f;
  auction::ResourceSchema schema;
  const auto sgx = schema.intern("sgx");
  f.snapshot.requests[0].resources.set(sgx, 1.0);
  AgreementContract c2;
  const auto ids = c2.register_allocation(1, f.snapshot, f.result, sgx);
  EXPECT_TRUE(c2.find(ids[0])->requires_tee);
  EXPECT_FALSE(c2.find(ids[1])->requires_tee);
}

TEST(Reputation, StartsAtInitial) {
  ReputationRegistry rep;
  EXPECT_DOUBLE_EQ(rep.score(ClientId(1)), 1.0);
  EXPECT_EQ(rep.consecutive_denials(ClientId(1)), 0u);
}

TEST(Reputation, SuccessiveDenialsCompound) {
  // "reputational penalty for successive rejections": the second denial in
  // a row costs more than the first.
  ReputationRegistry rep;
  rep.record_deny(ClientId(1));
  const double after_one = rep.score(ClientId(1));
  EXPECT_NEAR(after_one, 0.8, 1e-12);
  rep.record_deny(ClientId(1));
  const double after_two = rep.score(ClientId(1));
  EXPECT_NEAR(after_two, 0.8 * 0.64, 1e-12);  // factor² on the second strike
  // The second strike removes more score than a plain single-factor hit
  // would (0.288 lost vs 0.16): successive rejections compound.
  EXPECT_GT(after_one - after_two, after_one - 0.8 * after_one - 1e-12);
  EXPECT_EQ(rep.consecutive_denials(ClientId(1)), 2u);
}

TEST(Reputation, AcceptResetsStreakAndRecovers) {
  ReputationRegistry rep;
  rep.record_deny(ClientId(1));
  rep.record_deny(ClientId(1));
  rep.record_accept(ClientId(1));
  EXPECT_EQ(rep.consecutive_denials(ClientId(1)), 0u);
  EXPECT_GT(rep.score(ClientId(1)), 0.8 * 0.64);
}

TEST(Reputation, ScoreCappedAtMax) {
  ReputationRegistry rep;
  for (int i = 0; i < 50; ++i) rep.record_accept(ClientId(1));
  EXPECT_DOUBLE_EQ(rep.score(ClientId(1)), 1.0);
}

TEST(Reputation, ClientsAreIndependent) {
  ReputationRegistry rep;
  rep.record_deny(ClientId(1));
  EXPECT_LT(rep.score(ClientId(1)), 1.0);
  EXPECT_DOUBLE_EQ(rep.score(ClientId(2)), 1.0);
}

// Property-style edge cases: the score must stay inside [0, max_score]
// and behave predictably at its boundaries under any penalty sequence.
TEST(Reputation, ScoreIsClampedToZeroUnderAnyPenaltyBarrage) {
  ReputationRegistry registry;
  const ClientId pariah(1);
  for (int i = 0; i < 200; ++i) {
    (i % 2 == 0) ? registry.record_deny(pariah) : registry.record_withhold(pariah);
    const double s = registry.score(pariah);
    EXPECT_GE(s, 0.0) << "after penalty " << i;
    EXPECT_LE(s, 1.0) << "after penalty " << i;
  }
  // Denormal-or-zero by now; a further penalty at the floor must not
  // underflow or go negative.
  registry.record_withhold(pariah);
  EXPECT_GE(registry.score(pariah), 0.0);
}

TEST(Reputation, RepeatedDenialsInOneRoundCompoundByStreakLength) {
  ReputationConfig config;
  config.initial = 1.0;
  config.denial_factor = 0.5;
  ReputationRegistry registry(config);
  const ClientId flake(2);
  // Streak arithmetic: the k-th consecutive denial multiplies by
  // factor^k, so three denials in one round cost factor^(1+2+3).
  registry.record_deny(flake);
  EXPECT_DOUBLE_EQ(registry.score(flake), 0.5);
  registry.record_deny(flake);
  EXPECT_DOUBLE_EQ(registry.score(flake), 0.5 * 0.25);
  registry.record_deny(flake);
  EXPECT_DOUBLE_EQ(registry.score(flake), 0.5 * 0.25 * 0.125);
  EXPECT_EQ(registry.consecutive_denials(flake), 3u);
}

TEST(Reputation, ZeroRecoveryConfigNeverHeals) {
  ReputationConfig config;
  config.recovery = 0.0;
  ReputationRegistry registry(config);
  const ClientId client(3);
  registry.record_deny(client);
  const double after_deny = registry.score(client);
  for (int i = 0; i < 50; ++i) registry.record_accept(client);
  // Accepts still reset the streak, but with zero recovery the score is
  // stuck where the denial left it.
  EXPECT_DOUBLE_EQ(registry.score(client), after_deny);
  EXPECT_EQ(registry.consecutive_denials(client), 0u);
  registry.record_deny(client);
  EXPECT_DOUBLE_EQ(registry.score(client), after_deny * config.denial_factor);
}

TEST(Reputation, WithholdPenaltyHasNoStreakEscalation) {
  ReputationConfig config;
  config.withhold_factor = 0.5;
  ReputationRegistry registry(config);
  const ClientId client(4);
  registry.record_withhold(client);
  registry.record_withhold(client);
  registry.record_withhold(client);
  // Flat multiplicative hits: factor^3, not factor^(1+2+3).
  EXPECT_DOUBLE_EQ(registry.score(client), 0.125);
  EXPECT_EQ(registry.consecutive_denials(client), 0u);  // not a denial
  // A later denial starts its streak from one.
  registry.record_deny(client);
  EXPECT_DOUBLE_EQ(registry.score(client), 0.125 * config.denial_factor);
}

TEST(Reputation, WithholdFlowsThroughTheContract) {
  AgreementContract contract;
  const ClientId address(99);
  contract.penalize_withhold(address);
  const ReputationConfig config;
  EXPECT_DOUBLE_EQ(contract.reputation().score(address),
                   config.initial * config.withhold_factor);
}

TEST(Reputation, ContractRecordsThroughAcceptDeny) {
  Fixture f;
  f.contract.deny(f.ids[0], ClientId(1));
  EXPECT_LT(f.contract.reputation().score(ClientId(1)), 1.0);
  f.contract.accept(f.ids[1], ClientId(2));
  EXPECT_DOUBLE_EQ(f.contract.reputation().score(ClientId(2)), 1.0);  // capped
}

}  // namespace
}  // namespace decloud::ledger

#include "ledger/sealed_bid.hpp"

#include <gtest/gtest.h>

#include "common/ensure.hpp"
#include "common/rng.hpp"
#include "ledger/codec.hpp"

namespace decloud::ledger {
namespace {

struct Fixture {
  Rng rng{1};
  crypto::KeyPair signer = crypto::generate_keypair(rng);
  crypto::SymmetricKey key{};
  crypto::Nonce nonce{};
  std::vector<std::uint8_t> plaintext;

  Fixture() {
    for (std::size_t i = 0; i < key.size(); ++i) key[i] = static_cast<std::uint8_t>(i);
    nonce[0] = 9;
    auction::Request r;
    r.id = RequestId(1);
    r.client = ClientId(1);
    r.resources.set(auction::ResourceSchema::kCpu, 1.0);
    r.window_end = 7200;
    r.duration = 3600;
    r.bid = 1.5;
    plaintext = encode_request(r);
  }
};

TEST(SealedBid, CiphertextHidesPlaintext) {
  Fixture f;
  const SealedBid bid = seal_bid(BidKind::kRequest, f.plaintext, f.key, f.nonce, f.signer);
  EXPECT_EQ(bid.ciphertext.size(), f.plaintext.size());
  EXPECT_NE(bid.ciphertext, f.plaintext);
}

TEST(SealedBid, SignatureVerifies) {
  Fixture f;
  const SealedBid bid = seal_bid(BidKind::kRequest, f.plaintext, f.key, f.nonce, f.signer);
  EXPECT_TRUE(verify_sealed_bid(bid));
}

TEST(SealedBid, TamperedCiphertextFailsSignature) {
  Fixture f;
  SealedBid bid = seal_bid(BidKind::kRequest, f.plaintext, f.key, f.nonce, f.signer);
  bid.ciphertext[0] ^= 0xff;
  EXPECT_FALSE(verify_sealed_bid(bid));
}

TEST(SealedBid, SwappedSenderFailsSignature) {
  Fixture f;
  SealedBid bid = seal_bid(BidKind::kRequest, f.plaintext, f.key, f.nonce, f.signer);
  const crypto::KeyPair other = crypto::generate_keypair(f.rng);
  bid.sender = other.pub;
  EXPECT_FALSE(verify_sealed_bid(bid));
}

TEST(SealedBid, OpensWithCorrectKey) {
  Fixture f;
  const SealedBid bid = seal_bid(BidKind::kRequest, f.plaintext, f.key, f.nonce, f.signer);
  const auto opened = open_bid(bid, f.key);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, f.plaintext);
  EXPECT_NO_THROW(decode_request(*opened));
}

TEST(SealedBid, WrongKeyRejectedByKindTag) {
  Fixture f;
  const SealedBid bid = seal_bid(BidKind::kRequest, f.plaintext, f.key, f.nonce, f.signer);
  crypto::SymmetricKey wrong = f.key;
  wrong[0] ^= 1;
  const auto opened = open_bid(bid, wrong);
  // The kind-tag check rejects a wrong key unless the garbled first byte
  // happens to collide (1/256); this specific key does not collide.
  if (opened.has_value()) {
    EXPECT_THROW(decode_request(*opened), precondition_error);
  } else {
    SUCCEED();
  }
}

TEST(SealedBid, DigestIdentifiesContent) {
  Fixture f;
  const SealedBid a = seal_bid(BidKind::kRequest, f.plaintext, f.key, f.nonce, f.signer);
  const SealedBid b = seal_bid(BidKind::kRequest, f.plaintext, f.key, f.nonce, f.signer);
  EXPECT_EQ(a.digest(), b.digest());  // deterministic
  crypto::Nonce other_nonce = f.nonce;
  other_nonce[1] = 1;
  const SealedBid c = seal_bid(BidKind::kRequest, f.plaintext, f.key, other_nonce, f.signer);
  EXPECT_NE(a.digest(), c.digest());
}

TEST(SealedBid, OfferKindRoundtrip) {
  Fixture f;
  auction::Offer o;
  o.id = OfferId(2);
  o.provider = ProviderId(2);
  o.resources.set(auction::ResourceSchema::kCpu, 4.0);
  o.window_end = 86400;
  o.bid = 0.5;
  const auto plaintext = encode_offer(o);
  const SealedBid bid = seal_bid(BidKind::kOffer, plaintext, f.key, f.nonce, f.signer);
  EXPECT_TRUE(verify_sealed_bid(bid));
  const auto opened = open_bid(bid, f.key);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(decode_offer(*opened).id, OfferId(2));
}

TEST(SealedBid, KindMismatchRejectedOnOpen) {
  Fixture f;
  // Sealed as an offer but carrying request bytes: the tag check fires.
  const SealedBid bid = seal_bid(BidKind::kOffer, f.plaintext, f.key, f.nonce, f.signer);
  EXPECT_FALSE(open_bid(bid, f.key).has_value());
}

}  // namespace
}  // namespace decloud::ledger

#include "ledger/block.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "ledger/codec.hpp"

namespace decloud::ledger {
namespace {

constexpr unsigned kDifficulty = 8;

SealedBid make_bid(Rng& rng, std::uint64_t id) {
  const crypto::KeyPair signer = crypto::generate_keypair(rng);
  crypto::SymmetricKey key{};
  key[0] = static_cast<std::uint8_t>(id);
  crypto::Nonce nonce{};
  auction::Request r;
  r.id = RequestId(id);
  r.client = ClientId(id);
  r.resources.set(auction::ResourceSchema::kCpu, 1.0);
  r.window_end = 7200;
  r.duration = 3600;
  r.bid = 1.0;
  return seal_bid(BidKind::kRequest, encode_request(r), key, nonce, signer);
}

BlockPreamble mine(std::vector<SealedBid> bids, const crypto::Digest& prev,
                   std::uint64_t height) {
  BlockPreamble p;
  p.header.height = height;
  p.header.prev_hash = prev;
  p.header.timestamp = 1000;
  p.header.bids_root = bids_merkle_root(bids);
  p.sealed_bids = std::move(bids);
  const auto hb = p.header.bytes();
  p.pow = *crypto::solve_pow({hb.data(), hb.size()}, kDifficulty);
  return p;
}

TEST(BlockHeader, BytesAreDeterministic) {
  BlockHeader h;
  h.height = 3;
  h.timestamp = 99;
  EXPECT_EQ(h.bytes(), h.bytes());
  BlockHeader h2 = h;
  h2.height = 4;
  EXPECT_NE(h.bytes(), h2.bytes());
}

TEST(BidsMerkleRoot, EmptyIsZeroAndContentSensitive) {
  EXPECT_EQ(bids_merkle_root({}), crypto::Digest{});
  Rng rng(1);
  const auto a = bids_merkle_root({make_bid(rng, 1)});
  const auto b = bids_merkle_root({make_bid(rng, 2)});
  EXPECT_NE(a, b);
  EXPECT_NE(a, crypto::Digest{});
}

TEST(ValidatePreamble, HonestPreamblePasses) {
  Rng rng(2);
  const auto p = mine({make_bid(rng, 1), make_bid(rng, 2)}, crypto::Digest{}, 0);
  EXPECT_TRUE(validate_preamble(p, kDifficulty));
}

TEST(ValidatePreamble, WrongPowRejected) {
  Rng rng(3);
  auto p = mine({make_bid(rng, 1)}, crypto::Digest{}, 0);
  p.pow.nonce += 1;
  EXPECT_FALSE(validate_preamble(p, kDifficulty));
}

TEST(ValidatePreamble, DroppedBidBreaksMerkleRoot) {
  // A miner removing a bid after PoW is caught by the committed root —
  // the "did the miner exclude anyone" audit of Section III-B.
  Rng rng(4);
  auto p = mine({make_bid(rng, 1), make_bid(rng, 2)}, crypto::Digest{}, 0);
  p.sealed_bids.pop_back();
  EXPECT_FALSE(validate_preamble(p, kDifficulty));
}

TEST(ValidatePreamble, InjectedBidBreaksMerkleRoot) {
  Rng rng(5);
  auto p = mine({make_bid(rng, 1)}, crypto::Digest{}, 0);
  p.sealed_bids.push_back(make_bid(rng, 99));
  EXPECT_FALSE(validate_preamble(p, kDifficulty));
}

TEST(ValidatePreamble, ForgedBidSignatureRejected) {
  Rng rng(6);
  auto bid = make_bid(rng, 1);
  bid.ciphertext[0] ^= 1;  // breaks the signature
  // Rebuild the root so only the signature check can fail.
  BlockPreamble p;
  p.header.bids_root = bids_merkle_root({bid});
  p.sealed_bids = {bid};
  const auto hb = p.header.bytes();
  p.pow = *crypto::solve_pow({hb.data(), hb.size()}, kDifficulty);
  EXPECT_FALSE(validate_preamble(p, kDifficulty));
}

TEST(Blockchain, GenesisAppend) {
  Rng rng(7);
  Blockchain chain;
  EXPECT_EQ(chain.height(), 0u);
  EXPECT_EQ(chain.tip_hash(), crypto::Digest{});
  Block b;
  b.preamble = mine({make_bid(rng, 1)}, crypto::Digest{}, 0);
  EXPECT_TRUE(chain.append(b, kDifficulty));
  EXPECT_EQ(chain.height(), 1u);
  EXPECT_EQ(chain.tip_hash(), b.preamble.hash());
}

TEST(Blockchain, RejectsWrongHeight) {
  Rng rng(8);
  Blockchain chain;
  Block b;
  b.preamble = mine({make_bid(rng, 1)}, crypto::Digest{}, 5);  // height 5 on empty chain
  EXPECT_FALSE(chain.append(b, kDifficulty));
  EXPECT_EQ(chain.height(), 0u);
}

TEST(Blockchain, RejectsWrongPrevHash) {
  Rng rng(9);
  Blockchain chain;
  crypto::Digest not_the_tip{};
  not_the_tip[0] = 1;
  Block b;
  b.preamble = mine({make_bid(rng, 1)}, not_the_tip, 0);
  EXPECT_FALSE(chain.append(b, kDifficulty));
}

TEST(Blockchain, LinksSuccessiveBlocks) {
  Rng rng(10);
  Blockchain chain;
  Block b0;
  b0.preamble = mine({make_bid(rng, 1)}, crypto::Digest{}, 0);
  ASSERT_TRUE(chain.append(b0, kDifficulty));
  Block b1;
  b1.preamble = mine({make_bid(rng, 2)}, chain.tip_hash(), 1);
  EXPECT_TRUE(chain.append(b1, kDifficulty));
  EXPECT_EQ(chain.height(), 2u);
  EXPECT_EQ(chain.blocks()[1].preamble.header.prev_hash, chain.blocks()[0].preamble.hash());
}

TEST(Blockchain, RejectsInsufficientDifficulty) {
  Rng rng(11);
  Blockchain chain;
  Block b;
  b.preamble = mine({make_bid(rng, 1)}, crypto::Digest{}, 0);
  // Demand far more zero bits than the solution provides.
  EXPECT_FALSE(chain.append(b, 64));
}

}  // namespace
}  // namespace decloud::ledger

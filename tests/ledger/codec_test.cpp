#include "ledger/codec.hpp"

#include <gtest/gtest.h>

#include "auction/mechanism.hpp"
#include "common/ensure.hpp"
#include "common/rng.hpp"

namespace decloud::ledger {
namespace {

auction::Request sample_request() {
  auction::Request r;
  r.id = RequestId(42);
  r.client = ClientId(7);
  r.submitted = 12345;
  r.resources.set(auction::ResourceSchema::kCpu, 2.5);
  r.resources.set(auction::ResourceSchema::kMemory, 8.0);
  r.significance.set(auction::ResourceSchema::kMemory, 0.7);
  r.window_start = 100;
  r.window_end = 5000;
  r.duration = 2000;
  r.bid = 3.14;
  r.location = auction::Location{60.17, 24.94};  // Helsinki
  return r;
}

auction::Offer sample_offer() {
  auction::Offer o;
  o.id = OfferId(9);
  o.provider = ProviderId(3);
  o.submitted = 999;
  o.resources.set(auction::ResourceSchema::kCpu, 16.0);
  o.resources.set(auction::ResourceSchema::kDisk, 512.0);
  o.window_start = 0;
  o.window_end = 86400;
  o.bid = 0.768;
  return o;  // no location: exercises the optional
}

TEST(Codec, RequestRoundtrip) {
  const auto r = sample_request();
  const auto decoded = decode_request(encode_request(r));
  EXPECT_EQ(decoded.id, r.id);
  EXPECT_EQ(decoded.client, r.client);
  EXPECT_EQ(decoded.submitted, r.submitted);
  EXPECT_EQ(decoded.resources, r.resources);
  EXPECT_EQ(decoded.significance, r.significance);
  EXPECT_EQ(decoded.window_start, r.window_start);
  EXPECT_EQ(decoded.window_end, r.window_end);
  EXPECT_EQ(decoded.duration, r.duration);
  EXPECT_DOUBLE_EQ(decoded.bid, r.bid);
  EXPECT_EQ(decoded.location, r.location);
}

TEST(Codec, OfferRoundtrip) {
  const auto o = sample_offer();
  const auto decoded = decode_offer(encode_offer(o));
  EXPECT_EQ(decoded.id, o.id);
  EXPECT_EQ(decoded.provider, o.provider);
  EXPECT_EQ(decoded.resources, o.resources);
  EXPECT_DOUBLE_EQ(decoded.bid, o.bid);
  EXPECT_FALSE(decoded.location.has_value());
}

TEST(Codec, EncodingIsDeterministic) {
  EXPECT_EQ(encode_request(sample_request()), encode_request(sample_request()));
  EXPECT_EQ(encode_offer(sample_offer()), encode_offer(sample_offer()));
}

TEST(Codec, KindTagsDiffer) {
  EXPECT_NE(encode_request(sample_request()).front(), encode_offer(sample_offer()).front());
}

TEST(Codec, CrossDecodeRejected) {
  EXPECT_THROW(decode_offer(encode_request(sample_request())), precondition_error);
  EXPECT_THROW(decode_request(encode_offer(sample_offer())), precondition_error);
}

TEST(Codec, TruncatedPayloadRejected) {
  auto bytes = encode_request(sample_request());
  bytes.resize(bytes.size() / 2);
  EXPECT_THROW(decode_request(bytes), precondition_error);
}

TEST(Codec, TrailingBytesRejected) {
  auto bytes = encode_offer(sample_offer());
  bytes.push_back(0);
  EXPECT_THROW(decode_offer(bytes), precondition_error);
}

TEST(Codec, AllocationRoundtrip) {
  // Run a real auction so the allocation has content.
  auction::MarketSnapshot s;
  Rng rng(1);
  for (std::uint64_t i = 0; i < 10; ++i) {
    auction::Request r;
    r.id = RequestId(i);
    r.client = ClientId(i);
    r.submitted = static_cast<Time>(i);
    r.resources.set(auction::ResourceSchema::kCpu, 1.0);
    r.window_start = 0;
    r.window_end = 7200;
    r.duration = 3600;
    r.bid = rng.uniform(0.5, 3.0);
    s.requests.push_back(r);
  }
  for (std::uint64_t i = 0; i < 5; ++i) {
    auction::Offer o;
    o.id = OfferId(i);
    o.provider = ProviderId(i);
    o.submitted = static_cast<Time>(i);
    o.resources.set(auction::ResourceSchema::kCpu, 4.0);
    o.window_start = 0;
    o.window_end = 86400;
    o.bid = rng.uniform(0.1, 0.5);
    s.offers.push_back(o);
  }
  const auto result = auction::DeCloudAuction{}.run(s, 77);

  const auto decoded =
      decode_allocation(encode_allocation(result), s.requests.size(), s.offers.size());
  ASSERT_EQ(decoded.matches.size(), result.matches.size());
  for (std::size_t i = 0; i < result.matches.size(); ++i) {
    EXPECT_EQ(decoded.matches[i].request, result.matches[i].request);
    EXPECT_EQ(decoded.matches[i].offer, result.matches[i].offer);
    EXPECT_DOUBLE_EQ(decoded.matches[i].payment, result.matches[i].payment);
  }
  EXPECT_EQ(decoded.tentative_trades, result.tentative_trades);
  EXPECT_EQ(decoded.reduced_trades, result.reduced_trades);
  EXPECT_DOUBLE_EQ(decoded.welfare, result.welfare);
  EXPECT_NEAR(decoded.total_payments, result.total_payments, 1e-12);
  EXPECT_EQ(decoded.payment_by_request, result.payment_by_request);
  EXPECT_EQ(decoded.revenue_by_offer, result.revenue_by_offer);
}

TEST(Codec, AllocationRejectsOutOfRangeMatch) {
  auction::RoundResult result;
  result.payment_by_request.assign(2, 0.0);
  result.revenue_by_offer.assign(2, 0.0);
  auction::Match m;
  m.request = 1;
  m.offer = 1;
  result.matches.push_back(m);
  const auto bytes = encode_allocation(result);
  // Decoding with a smaller universe must fail.
  EXPECT_THROW(decode_allocation(bytes, 1, 2), precondition_error);
  EXPECT_THROW(decode_allocation(bytes, 2, 1), precondition_error);
  EXPECT_NO_THROW(decode_allocation(bytes, 2, 2));
}

}  // namespace
}  // namespace decloud::ledger

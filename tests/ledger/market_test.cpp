#include "ledger/market.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "common/ensure.hpp"
#include "common/rng.hpp"

namespace decloud::ledger {
namespace {

MarketConfig small_config() {
  MarketConfig mc;
  mc.consensus.difficulty_bits = 8;
  mc.num_verifiers = 1;
  return mc;
}

auction::Request make_request(std::uint64_t id, Money bid, double cpu = 1.0) {
  auction::Request r;
  r.id = RequestId(id);
  r.client = ClientId(id);
  r.submitted = static_cast<Time>(id);
  r.resources.set(auction::ResourceSchema::kCpu, cpu);
  r.window_start = 0;
  r.window_end = 1'000'000;  // wide windows so resubmission stays feasible
  r.duration = 3600;
  r.bid = bid;
  return r;
}

auction::Offer make_offer(std::uint64_t id, Money bid, double cpu = 4.0) {
  auction::Offer o;
  o.id = OfferId(id);
  o.provider = ProviderId(id);
  o.submitted = static_cast<Time>(id);
  o.resources.set(auction::ResourceSchema::kCpu, cpu);
  o.window_start = 0;
  o.window_end = 2'000'000;
  o.bid = bid;
  return o;
}

TEST(MarketOrchestrator, SingleRoundAllocates) {
  MarketOrchestrator market(small_config());
  market.submit(make_request(1, 5.0));
  market.submit(make_offer(1, 0.1));
  market.submit(make_offer(2, 0.2));  // spare: lets the single trade survive

  const auto outcome = market.run_round(0);
  EXPECT_TRUE(outcome.block_accepted);
  EXPECT_EQ(market.stats().requests_allocated, 1u);
  EXPECT_EQ(market.stats().rounds, 1u);
  ASSERT_FALSE(market.stats().allocation_latency.empty());
  EXPECT_EQ(market.stats().allocation_latency[0], 1u);  // first attempt
}

TEST(MarketOrchestrator, UnmatchedBidResubmitsAndEventuallyAllocates) {
  MarketOrchestrator market(small_config());
  // Round 1: a lone pair — trade reduction eats the only trade, so the
  // request must come back.
  market.submit(make_request(1, 5.0));
  market.submit(make_offer(1, 0.1));
  const auto first = market.run_round(0);
  EXPECT_TRUE(first.block_accepted);
  EXPECT_EQ(market.stats().requests_allocated, 0u);
  EXPECT_GT(market.queued_bids(), 0u);  // both bids re-queued

  // Round 2: a spare offer arrives; the resubmitted request clears.
  market.submit(make_offer(2, 0.2));
  const auto second = market.run_round(600);
  EXPECT_TRUE(second.block_accepted);
  EXPECT_EQ(market.stats().requests_allocated, 1u);
  // The allocation happened on the request's SECOND attempt.
  ASSERT_GE(market.stats().allocation_latency.size(), 2u);
  EXPECT_EQ(market.stats().allocation_latency[1], 1u);
}

TEST(MarketOrchestrator, RetryBudgetAbandonsHopelessBids) {
  MarketConfig mc = small_config();
  mc.max_resubmissions = 2;
  MarketOrchestrator market(mc);
  market.submit(make_request(1, 0.000001));  // cannot afford anything
  market.submit(make_offer(1, 50.0));
  market.drain(/*max_rounds=*/10);
  EXPECT_EQ(market.stats().requests_allocated, 0u);
  EXPECT_EQ(market.stats().requests_abandoned, 1u);
  EXPECT_LE(market.stats().rounds, 4u);  // 1 initial + 2 retries + drain stop
}

TEST(MarketOrchestrator, DrainStopsWhenQueueEmpties) {
  MarketOrchestrator market(small_config());
  market.submit(make_request(1, 5.0));
  market.submit(make_offer(1, 0.1));
  market.submit(make_offer(2, 0.2));
  market.drain(20);
  EXPECT_LE(market.stats().rounds, 5u);
  EXPECT_EQ(market.stats().requests_allocated, 1u);
}

TEST(MarketOrchestrator, StatsAreInternallyConsistent) {
  MarketOrchestrator market(small_config());
  Rng rng(9);
  for (std::uint64_t i = 1; i <= 12; ++i) {
    market.submit(make_request(i, rng.uniform(0.5, 4.0)));
  }
  for (std::uint64_t i = 1; i <= 8; ++i) {
    market.submit(make_offer(i, rng.uniform(0.05, 0.6)));
  }
  market.drain(10);

  const MarketStats& st = market.stats();
  EXPECT_EQ(st.requests_submitted, 12u);
  EXPECT_LE(st.requests_allocated + st.requests_abandoned, st.requests_submitted);
  const std::size_t latency_sum =
      std::accumulate(st.allocation_latency.begin(), st.allocation_latency.end(), std::size_t{0});
  EXPECT_EQ(latency_sum, st.requests_allocated);
  EXPECT_GE(st.allocation_rate(), 0.0);
  EXPECT_LE(st.allocation_rate(), 1.0);
  EXPECT_GE(st.total_welfare, 0.0);
  // Chain advanced one block per round.
  EXPECT_EQ(market.protocol().chain().height(), st.rounds);
}

// --- MarketStats edge-case semantics, locked in by regression tests. ---

TEST(MarketStatsEdge, AllocationRateWithZeroSubmissionsIsZeroNotNaN) {
  const MarketStats empty;
  EXPECT_EQ(empty.allocation_rate(), 0.0);
  // And through a live orchestrator that never saw a bid:
  MarketOrchestrator market(small_config());
  EXPECT_EQ(market.stats().allocation_rate(), 0.0);
}

TEST(MarketStatsEdge, MaxResubmissionsZeroGivesExactlyOneRound) {
  MarketConfig mc = small_config();
  mc.max_resubmissions = 0;
  MarketOrchestrator market(mc);
  market.submit(make_request(1, 0.000001));  // hopeless: cannot afford anything
  market.submit(make_offer(1, 50.0));
  const auto outcome = market.run_round(0);
  EXPECT_TRUE(outcome.block_accepted);
  // One round, no resubmission: the request is abandoned and the offer is
  // gone too — the queue is empty after the single attempt.
  EXPECT_EQ(market.stats().rounds, 1u);
  EXPECT_EQ(market.stats().requests_abandoned, 1u);
  EXPECT_EQ(market.stats().requests_allocated, 0u);
  EXPECT_EQ(market.queued_bids(), 0u);
  market.drain(10);
  EXPECT_EQ(market.stats().rounds, 1u);  // drain finds nothing to do
}

TEST(MarketStatsEdge, DeniedAgreementRevertsLatencyAndRefundsOffer) {
  MarketOrchestrator market(small_config());
  market.submit(make_request(1, 5.0));
  market.submit(make_offer(1, 0.1));
  market.submit(make_offer(2, 0.2));
  const auto outcome = market.run_round(0);
  ASSERT_TRUE(outcome.block_accepted);
  ASSERT_EQ(market.stats().requests_allocated, 1u);
  ASSERT_EQ(outcome.agreements.size(), 1u);
  const std::size_t latency_before = std::accumulate(market.stats().allocation_latency.begin(),
                                                     market.stats().allocation_latency.end(),
                                                     std::size_t{0});
  ASSERT_EQ(latency_before, 1u);
  const std::size_t offers_queued_before = market.queued_bids();

  ASSERT_TRUE(market.deny_agreement(outcome.agreements[0]));

  // The allocation is un-counted and the latency histogram reverts with it
  // (invariant: Σ latency == requests_allocated survives denial).
  EXPECT_EQ(market.stats().requests_allocated, 0u);
  EXPECT_EQ(market.stats().agreements_denied, 1u);
  const std::size_t latency_after = std::accumulate(market.stats().allocation_latency.begin(),
                                                    market.stats().allocation_latency.end(),
                                                    std::size_t{0});
  EXPECT_EQ(latency_after, 0u);
  // The provider's offer is still queued (denial refunds its attempt, so
  // it does not age out faster than an unmatched offer would).
  EXPECT_GE(market.queued_bids(), offers_queued_before);

  // Denying twice fails: the agreement already left the Proposed state.
  EXPECT_FALSE(market.deny_agreement(outcome.agreements[0]));

  // The refunded offer can still serve a NEW request, whose latency lands
  // in the first-attempt bucket as usual.
  market.submit(make_request(2, 5.0));
  const auto second = market.run_round(600);
  ASSERT_TRUE(second.block_accepted);
  EXPECT_EQ(market.stats().requests_allocated, 1u);
  ASSERT_FALSE(market.stats().allocation_latency.empty());
  EXPECT_EQ(market.stats().allocation_latency[0], 1u);
}

TEST(MarketStatsEdge, DenyAgreementRejectsUnknownOrStaleIds) {
  MarketOrchestrator market(small_config());
  EXPECT_FALSE(market.deny_agreement(ContractId(12345)));
  market.submit(make_request(1, 5.0));
  market.submit(make_offer(1, 0.1));
  market.submit(make_offer(2, 0.2));
  const auto outcome = market.run_round(0);
  ASSERT_TRUE(outcome.block_accepted);
  ASSERT_EQ(outcome.agreements.size(), 1u);
  // A later round supersedes the deniable set.
  market.submit(make_request(2, 5.0));
  (void)market.run_round(600);
  EXPECT_FALSE(market.deny_agreement(outcome.agreements[0]));
}

TEST(MarketOrchestrator, ValidatesOnSubmit) {
  MarketOrchestrator market(small_config());
  auction::Request bad = make_request(1, -1.0);
  EXPECT_THROW(market.submit(bad), precondition_error);
}

}  // namespace
}  // namespace decloud::ledger

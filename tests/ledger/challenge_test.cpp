#include "ledger/challenge.hpp"

#include <gtest/gtest.h>

#include "common/ensure.hpp"
#include "common/rng.hpp"
#include "ledger/participant.hpp"

namespace decloud::ledger {
namespace {

/// A mined block with a valid body, plus the verifier pool.
struct Game {
  Rng rng{5};
  ConsensusParams params{.difficulty_bits = 8};
  Miner producer{params};
  Participant wallet{rng};
  BlockPreamble preamble;
  BlockBody body;
  std::vector<Miner> pool;

  Game() {
    std::vector<SealedBid> bids;
    auction::Request r;
    r.id = RequestId(1);
    r.client = ClientId(1);
    r.resources.set(auction::ResourceSchema::kCpu, 1.0);
    r.window_end = 7200;
    r.duration = 3600;
    r.bid = 3.0;
    bids.push_back(wallet.submit_request(r, rng));
    auction::Offer o;
    o.id = OfferId(1);
    o.provider = ProviderId(1);
    o.resources.set(auction::ResourceSchema::kCpu, 4.0);
    o.window_end = 86400;
    o.bid = 0.1;
    bids.push_back(wallet.submit_offer(o, rng));

    preamble = *producer.mine_preamble(std::move(bids), crypto::Digest{}, 0, 0);
    const auto reveals = wallet.on_preamble(preamble);
    body = producer.compute_body(preamble, reveals);
    pool.assign(5, Miner(params));
  }
};

TEST(SampleChallengers, DeterministicAndDistinct) {
  Game g;
  const auto a = sample_challengers(g.preamble, 5, 3);
  const auto b = sample_challengers(g.preamble, 5, 3);
  EXPECT_EQ(a, b);
  ASSERT_EQ(a.size(), 3u);
  EXPECT_TRUE(std::is_sorted(a.begin(), a.end()));
  EXPECT_NE(a[0], a[1]);
  EXPECT_NE(a[1], a[2]);
  for (const std::size_t i : a) EXPECT_LT(i, 5u);
}

TEST(SampleChallengers, CappedAtPoolSize) {
  Game g;
  EXPECT_EQ(sample_challengers(g.preamble, 2, 10).size(), 2u);
  EXPECT_TRUE(sample_challengers(g.preamble, 0, 3).empty());
}

TEST(SampleChallengers, IndependentOfAllocationLottery) {
  // The challenger draw must be domain-separated from the allocation seed.
  Game g;
  const auto sample = sample_challengers(g.preamble, 100, 1);
  EXPECT_NE(sample[0], Miner::allocation_seed(g.preamble) % 100);
}

TEST(ChallengeGame, HonestBlockSurvives) {
  Game g;
  const ChallengeConfig cfg;
  const auto outcome = run_challenge_game(g.preamble, g.body, g.pool, cfg);
  EXPECT_FALSE(outcome.fraud_proven);
  EXPECT_TRUE(outcome.block_accepted());
  EXPECT_DOUBLE_EQ(outcome.producer_delta, 0.0);
  for (const Money d : outcome.challenger_deltas) EXPECT_DOUBLE_EQ(d, 0.0);
  EXPECT_EQ(outcome.challengers.size(), cfg.num_challengers);
}

TEST(ChallengeGame, TamperedBodyIsSlashed) {
  Game g;
  BlockBody forged = g.body;
  forged.allocation.back() ^= 0x55;
  ChallengeConfig cfg;
  cfg.producer_deposit = 10.0;
  cfg.challenger_reward_share = 0.5;
  const auto outcome = run_challenge_game(g.preamble, forged, g.pool, cfg);
  ASSERT_TRUE(outcome.fraud_proven);
  EXPECT_FALSE(outcome.block_accepted());
  EXPECT_DOUBLE_EQ(outcome.producer_delta, -10.0);
  // Exactly the winner is rewarded, with the configured share.
  Money rewarded = 0.0;
  for (const Money d : outcome.challenger_deltas) rewarded += d;
  EXPECT_DOUBLE_EQ(rewarded, 5.0);
  EXPECT_DOUBLE_EQ(outcome.challenger_deltas[outcome.winner], 5.0);
}

TEST(ChallengeGame, NoChallengersMeansNoDetection) {
  // The security/efficiency dial: zero challengers never slashes — the
  // degenerate end of the TrueBit trade-off.
  Game g;
  BlockBody forged = g.body;
  forged.allocation.back() ^= 0x55;
  ChallengeConfig cfg;
  cfg.num_challengers = 0;
  const auto outcome = run_challenge_game(g.preamble, forged, g.pool, cfg);
  EXPECT_FALSE(outcome.fraud_proven);
  EXPECT_TRUE(outcome.block_accepted());  // fraud slips through, by design
}

TEST(ChallengeGame, RewardShareValidated) {
  Game g;
  ChallengeConfig cfg;
  cfg.challenger_reward_share = 1.5;
  EXPECT_THROW(run_challenge_game(g.preamble, g.body, g.pool, cfg), precondition_error);
}

}  // namespace
}  // namespace decloud::ledger

#include "engine/engine.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "engine/driver.hpp"
#include "engine/epoch_scheduler.hpp"

namespace decloud::engine {
namespace {

EngineConfig small_engine(std::size_t shards) {
  EngineConfig config;
  config.router.num_shards = shards;
  config.router.x0 = 0.0;
  config.router.x1 = 100.0;
  config.router.y0 = 0.0;
  config.router.y1 = 100.0;
  config.market.consensus.difficulty_bits = 8;
  config.market.num_verifiers = 1;
  config.market.consensus.auction.threads = 1;
  return config;
}

auction::Request make_request(std::uint64_t id, Money bid, double x, double y) {
  auction::Request r;
  r.id = RequestId(id);
  r.client = ClientId(id);
  r.submitted = static_cast<Time>(id);
  r.resources.set(auction::ResourceSchema::kCpu, 1.0);
  r.window_start = 0;
  r.window_end = 1'000'000;
  r.duration = 3600;
  r.bid = bid;
  r.location = auction::Location{x, y};
  return r;
}

auction::Offer make_offer(std::uint64_t id, Money bid, double x, double y) {
  auction::Offer o;
  o.id = OfferId(id);
  o.provider = ProviderId(id);
  o.submitted = static_cast<Time>(id);
  o.resources.set(auction::ResourceSchema::kCpu, 4.0);
  o.window_start = 0;
  o.window_end = 2'000'000;
  o.bid = bid;
  o.location = auction::Location{x, y};
  return o;
}

TEST(MarketEngine, RoutesColocatedBidsToOneShardAndClearsThem) {
  MarketEngine engine(small_engine(4));
  // A matched pair plus a spare offer, all at one spot → one shard hosts
  // the whole market.
  const auto a1 = engine.submit(make_request(1, 5.0, 10.0, 10.0));
  const auto a2 = engine.submit(make_offer(1, 0.1, 10.5, 10.5));
  const auto a3 = engine.submit(make_offer(2, 0.2, 10.1, 10.9));
  ASSERT_TRUE(a1.admitted());
  EXPECT_EQ(a1.shard, a2.shard);
  EXPECT_EQ(a1.shard, a3.shard);

  EpochScheduler scheduler(engine, /*threads=*/1);
  scheduler.run(/*max_epochs=*/8);

  const EngineReport report = scheduler.report();
  EXPECT_EQ(report.total.requests_submitted, 1u);
  EXPECT_EQ(report.total.requests_allocated, 1u);
  EXPECT_EQ(report.shards[a1.shard].stats.requests_allocated, 1u);
  // Only the busy shard ran rounds; idle shards must not mine empty blocks.
  for (std::size_t s = 0; s < engine.num_shards(); ++s) {
    if (s != a1.shard) {
      EXPECT_EQ(report.shards[s].epochs, 0u);
      EXPECT_EQ(report.shards[s].stats.rounds, 0u);
    }
  }
}

TEST(MarketEngine, BackpressureRejectsAtCapacityAndCountsPerShard) {
  EngineConfig config = small_engine(2);
  config.queue_capacity = 3;
  config.queue_watermark = 1;
  MarketEngine engine(config);

  // All to the same location → same shard queue.
  const auto first = engine.submit(make_request(1, 1.0, 5.0, 5.0));
  ASSERT_TRUE(first.admitted());
  EXPECT_EQ(first.status, Admission::kAccepted);
  const auto second = engine.submit(make_request(2, 1.0, 5.0, 5.0));
  EXPECT_EQ(second.status, Admission::kQueued);  // above watermark: congested
  const auto third = engine.submit(make_request(3, 1.0, 5.0, 5.0));
  EXPECT_EQ(third.status, Admission::kQueued);
  const auto fourth = engine.submit(make_request(4, 1.0, 5.0, 5.0));
  EXPECT_EQ(fourth.status, Admission::kRejected);
  EXPECT_EQ(fourth.reason, EngineAdmission::Reason::kBackpressure);

  const EngineReport report = engine.report();
  EXPECT_EQ(report.bids_rejected_backpressure, 1u);
  EXPECT_EQ(report.shards[first.shard].bids_rejected_backpressure, 1u);
  // The rejected bid never reached the market.
  EXPECT_EQ(report.total.requests_submitted, 0u);  // still in ingest, not market
  EXPECT_EQ(engine.queued_bids(), 3u);

  // Draining the queue (one epoch) reopens admission.
  EpochScheduler scheduler(engine, 1);
  scheduler.tick(0);
  EXPECT_TRUE(engine.submit(make_request(5, 1.0, 5.0, 5.0)).admitted());
}

TEST(MarketEngine, SpilloverPolicyCountsSpilledAndUnroutableBids) {
  EngineConfig config = small_engine(4);
  config.router.spillover = SpilloverPolicy::kShardZero;
  MarketEngine engine(config);

  auction::Request homeless = make_request(1, 1.0, 0.0, 0.0);
  homeless.location.reset();
  const auto spilled = engine.submit(homeless);
  ASSERT_TRUE(spilled.admitted());
  EXPECT_EQ(spilled.shard, 0u);
  EXPECT_EQ(engine.report().bids_spilled, 1u);
  EXPECT_EQ(engine.report().shards[0].bids_spilled, 1u);

  EngineConfig strict = small_engine(4);
  strict.router.spillover = SpilloverPolicy::kReject;
  MarketEngine strict_engine(strict);
  auction::Offer wanderer = make_offer(1, 0.1, 0.0, 0.0);
  wanderer.location.reset();
  const auto refused = strict_engine.submit(wanderer);
  EXPECT_FALSE(refused.admitted());
  EXPECT_EQ(refused.reason, EngineAdmission::Reason::kUnroutable);
  EXPECT_EQ(strict_engine.report().bids_rejected_unroutable, 1u);
}

TEST(MarketEngine, ValidatesBidsAtSubmit) {
  MarketEngine engine(small_engine(2));
  auction::Request bad = make_request(1, -1.0, 5.0, 5.0);
  EXPECT_THROW(engine.submit(bad), precondition_error);
}

// The integration-level reconciliation the ISSUE pins down: EngineReport's
// aggregate counters must equal the shard-wise sums, and the merged
// MarketStats must equal the sum of the per-shard MarketStats.
TEST(MarketEngineIntegration, ReportReconcilesWithSummedShardStats) {
  EngineConfig config = small_engine(4);
  config.queue_capacity = 64;  // small enough that backpressure can trigger
  config.queue_watermark = 48;
  MarketEngine engine(config);
  EpochScheduler scheduler(engine, 1);

  TraceDriverConfig driver;
  driver.workload.num_requests = 48;
  driver.workload.num_offers = 24;
  driver.located_fraction = 0.75;  // a real spillover population
  driver.bids_per_epoch = 24;
  driver.seed = 11;
  const DriveOutcome outcome = drive_trace(engine, scheduler, driver);

  const EngineReport& report = outcome.report;
  ASSERT_EQ(report.shards.size(), 4u);

  ledger::MarketStats summed;
  std::size_t rejected = 0;
  std::size_t spilled = 0;
  Money welfare = 0.0;
  for (const ShardReport& shard : report.shards) {
    merge_stats(summed, shard.stats);
    rejected += shard.bids_rejected_backpressure;
    spilled += shard.bids_spilled;
    welfare += shard.welfare();
  }
  EXPECT_EQ(report.bids_rejected_backpressure, rejected);
  EXPECT_EQ(report.bids_spilled, spilled);
  EXPECT_EQ(report.total.requests_submitted, summed.requests_submitted);
  EXPECT_EQ(report.total.requests_allocated, summed.requests_allocated);
  EXPECT_EQ(report.total.requests_abandoned, summed.requests_abandoned);
  EXPECT_EQ(report.total.offers_submitted, summed.offers_submitted);
  EXPECT_EQ(report.total.rounds, summed.rounds);
  EXPECT_EQ(report.total.total_welfare, summed.total_welfare);
  EXPECT_EQ(report.total.allocation_latency, summed.allocation_latency);
  EXPECT_EQ(report.total.total_welfare, welfare);

  // Driver-side accounting closes the loop: everything generated was
  // either admitted into a shard or rejected (backpressure/unroutable).
  EXPECT_EQ(outcome.bids_admitted + outcome.bids_rejected, outcome.bids_generated);
  EXPECT_EQ(outcome.bids_rejected,
            report.bids_rejected_backpressure + report.bids_rejected_unroutable);
  EXPECT_EQ(report.total.requests_submitted + report.total.offers_submitted,
            outcome.bids_admitted);
  // The latency histogram stays an exact decomposition of allocations.
  const std::size_t latency_sum =
      std::accumulate(report.total.allocation_latency.begin(),
                      report.total.allocation_latency.end(), std::size_t{0});
  EXPECT_EQ(latency_sum, report.total.requests_allocated);
  // Every allocation is backed by a block on some shard's chain.
  std::size_t chain_height = 0;
  for (std::size_t s = 0; s < engine.num_shards(); ++s) {
    chain_height += engine.shard_market(s).protocol().chain().height();
  }
  EXPECT_EQ(chain_height, report.total.rounds);
}

}  // namespace
}  // namespace decloud::engine

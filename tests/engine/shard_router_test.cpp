#include "engine/shard_router.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/ensure.hpp"

namespace decloud::engine {
namespace {

auction::Request located_request(std::uint64_t id, double x, double y) {
  auction::Request r;
  r.id = RequestId(id);
  r.location = auction::Location{x, y};
  return r;
}

auction::Offer located_offer(std::uint64_t id, double x, double y) {
  auction::Offer o;
  o.id = OfferId(id);
  o.location = auction::Location{x, y};
  return o;
}

ShardRouterConfig grid_config(std::size_t shards) {
  ShardRouterConfig config;
  config.num_shards = shards;
  config.x0 = 0.0;
  config.x1 = 100.0;
  config.y0 = 0.0;
  config.y1 = 100.0;
  return config;
}

TEST(ShardRouter, RoutingIsStableAcrossCallsAndRouterInstances) {
  const ShardRouter a(grid_config(16));
  const ShardRouter b(grid_config(16));
  for (std::uint64_t id = 0; id < 64; ++id) {
    const auto r = located_request(id, static_cast<double>(id % 10) * 9.7,
                                   static_cast<double>(id % 7) * 13.1);
    const Route first = a.route(r);
    ASSERT_TRUE(first.routed());
    EXPECT_EQ(first.shard, a.route(r).shard) << "unstable across calls, id " << id;
    EXPECT_EQ(first.shard, b.route(r).shard) << "unstable across instances, id " << id;
  }
}

TEST(ShardRouter, RequestAndOfferAtSameLocationShareAShard) {
  const ShardRouter router(grid_config(9));
  for (double x : {5.0, 42.0, 77.7, 99.9}) {
    for (double y : {1.0, 50.0, 88.8}) {
      const Route rr = router.route(located_request(1, x, y));
      const Route ro = router.route(located_offer(2, x, y));
      ASSERT_TRUE(rr.routed());
      EXPECT_EQ(rr.shard, ro.shard) << "(" << x << "," << y << ")";
    }
  }
}

TEST(ShardRouter, GridReachesEveryShard) {
  const std::size_t shards = 16;
  const ShardRouter router(grid_config(shards));
  std::set<std::size_t> seen;
  for (double x = 0.5; x < 100.0; x += 3.0) {
    for (double y = 0.5; y < 100.0; y += 3.0) {
      const Route route = router.route(located_request(1, x, y));
      ASSERT_TRUE(route.routed());
      ASSERT_LT(route.shard, shards);
      seen.insert(route.shard);
    }
  }
  EXPECT_EQ(seen.size(), shards);
}

TEST(ShardRouter, OutOfBoxCoordinatesClampOntoTheGrid) {
  const ShardRouter router(grid_config(4));
  for (const auto& [x, y] : std::vector<std::pair<double, double>>{
           {-50.0, -50.0}, {1e9, 1e9}, {-1.0, 200.0}, {200.0, -1.0}}) {
    const Route route = router.route(located_request(1, x, y));
    ASSERT_TRUE(route.routed());
    EXPECT_LT(route.shard, 4u);
    EXPECT_EQ(route.kind, RouteKind::kGrid);
  }
}

TEST(ShardRouter, RegionTableWinsOverGridAndHonorsPrecedence) {
  ShardRouterConfig config = grid_config(8);
  // Claim the whole box for shard 7, with a nested inner claim for shard 2
  // listed FIRST (earlier entries win overlaps).
  config.regions.push_back({40.0, 60.0, 40.0, 60.0, 2});
  config.regions.push_back({0.0, 100.0, 0.0, 100.0, 7});
  const ShardRouter router(config);

  const Route inner = router.route(located_request(1, 50.0, 50.0));
  EXPECT_EQ(inner.kind, RouteKind::kRegion);
  EXPECT_EQ(inner.shard, 2u);
  const Route outer = router.route(located_request(2, 10.0, 10.0));
  EXPECT_EQ(outer.kind, RouteKind::kRegion);
  EXPECT_EQ(outer.shard, 7u);
  // Outside every region (box coordinates are clamped only for the grid):
  const Route beyond = router.route(located_request(3, 500.0, 500.0));
  EXPECT_EQ(beyond.kind, RouteKind::kGrid);
}

TEST(ShardRouter, SpilloverHashSpreadsLocationlessBidsStably) {
  ShardRouterConfig config = grid_config(8);
  config.spillover = SpilloverPolicy::kHashId;
  const ShardRouter router(config);
  std::set<std::size_t> seen;
  for (std::uint64_t id = 0; id < 256; ++id) {
    auction::Request r;
    r.id = RequestId(id);
    const Route route = router.route(r);
    ASSERT_TRUE(route.routed());
    EXPECT_EQ(route.kind, RouteKind::kSpilled);
    EXPECT_EQ(route.shard, router.route(r).shard);  // stable per id
    seen.insert(route.shard);
  }
  EXPECT_GT(seen.size(), 1u);  // the hash actually spreads
}

TEST(ShardRouter, SpilloverShardZeroPinsLocationlessBids) {
  ShardRouterConfig config = grid_config(8);
  config.spillover = SpilloverPolicy::kShardZero;
  const ShardRouter router(config);
  auction::Offer o;
  o.id = OfferId(77);
  const Route route = router.route(o);
  EXPECT_EQ(route.kind, RouteKind::kSpilled);
  EXPECT_EQ(route.shard, 0u);
}

TEST(ShardRouter, SpilloverRejectRefusesLocationlessBids) {
  ShardRouterConfig config = grid_config(8);
  config.spillover = SpilloverPolicy::kReject;
  const ShardRouter router(config);
  auction::Request r;
  r.id = RequestId(5);
  EXPECT_FALSE(router.route(r).routed());
  // Located bids are unaffected by the policy.
  EXPECT_TRUE(router.route(located_request(6, 10.0, 10.0)).routed());
}

TEST(ShardRouter, ValidatesConfig) {
  ShardRouterConfig no_shards = grid_config(0);
  EXPECT_THROW(ShardRouter{no_shards}, precondition_error);
  ShardRouterConfig bad_region = grid_config(4);
  bad_region.regions.push_back({0.0, 1.0, 0.0, 1.0, /*shard=*/9});  // out of range
  EXPECT_THROW(ShardRouter{bad_region}, precondition_error);
}

}  // namespace
}  // namespace decloud::engine

// The engine's replayability bar (ISSUE 2, mirroring PR 1's intra-round
// contract): (a) a 1-shard engine over a trace workload is byte-identical
// to driving MarketOrchestrator directly with the same seed, and (b) an
// N-shard run is byte-identical across scheduler thread counts.
#include <gtest/gtest.h>

#include <string>

#include "common/rng.hpp"
#include "engine/driver.hpp"
#include "engine/engine.hpp"
#include "engine/epoch_scheduler.hpp"
#include "ledger/market.hpp"
#include "trace/workload.hpp"

namespace decloud::engine {
namespace {

constexpr std::uint64_t kSeed = 7;

ledger::MarketConfig market_config() {
  ledger::MarketConfig mc;
  mc.consensus.difficulty_bits = 8;
  mc.num_verifiers = 1;
  mc.consensus.auction.threads = 1;
  return mc;
}

EngineConfig engine_config(std::size_t shards) {
  EngineConfig config;
  config.router.num_shards = shards;
  config.router.x0 = 0.0;
  config.router.x1 = 100.0;
  config.router.y0 = 0.0;
  config.router.y1 = 100.0;
  config.market = market_config();
  return config;
}

TraceDriverConfig driver_config() {
  TraceDriverConfig driver;
  driver.workload.num_requests = 40;
  driver.workload.num_offers = 20;
  driver.located_fraction = 0.8;
  driver.bids_per_epoch = 20;
  driver.seed = kSeed;
  return driver;
}

/// Byte-exact comparison of two MarketStats.
void expect_stats_identical(const ledger::MarketStats& a, const ledger::MarketStats& b) {
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.requests_submitted, b.requests_submitted);
  EXPECT_EQ(a.requests_allocated, b.requests_allocated);
  EXPECT_EQ(a.requests_abandoned, b.requests_abandoned);
  EXPECT_EQ(a.offers_submitted, b.offers_submitted);
  EXPECT_EQ(a.agreements_denied, b.agreements_denied);
  EXPECT_EQ(a.total_welfare, b.total_welfare);  // exact, not near
  EXPECT_EQ(a.total_settled, b.total_settled);
  EXPECT_EQ(a.allocation_latency, b.allocation_latency);
}

TEST(EngineDeterminism, OneShardEngineMatchesDirectOrchestratorByteForByte) {
  // Reference: MarketOrchestrator driven by hand with the identical
  // submission sequence the driver produces.
  const TraceDriverConfig driver = driver_config();
  auction::MarketSnapshot snapshot;
  {
    Rng rng(driver.seed);
    snapshot =
        trace::make_workload(driver.workload, market_config().consensus.auction, rng);
    // 1-shard routing is location-independent, so leaving the reference
    // bids location-less changes nothing — the auction never reads ℓ
    // unless proximity augmentation is configured.
  }

  ledger::MarketOrchestrator reference(market_config());
  {
    // Mirror the driver's interleaved order and per-epoch batching.
    const std::size_t n_req = snapshot.requests.size();
    const std::size_t n_off = snapshot.offers.size();
    std::vector<std::size_t> order;
    for (std::size_t i = 0; i < std::max(n_req, n_off); ++i) {
      if (i < n_req) order.push_back(i);
      if (i < n_off) order.push_back(n_req + i);
    }
    Time now = driver.start_time;
    for (std::size_t done = 0; done < order.size();) {
      const std::size_t stop = std::min(order.size(), done + driver.bids_per_epoch);
      for (; done < stop; ++done) {
        const std::size_t i = order[done];
        if (i < n_req) {
          reference.submit(snapshot.requests[i]);
        } else {
          reference.submit(snapshot.offers[i - n_req]);
        }
      }
      if (reference.queued_bids() > 0) (void)reference.run_round(now);
      now += driver.epoch_interval;
    }
    reference.drain(driver.drain_epochs, now, driver.epoch_interval);
  }

  // Engine under test: one shard, every bid lands there regardless of
  // location, identical batching via the trace driver.
  MarketEngine engine(engine_config(1));
  EpochScheduler scheduler(engine, /*threads=*/1);
  TraceDriverConfig engine_driver = driver;
  engine_driver.located_fraction = 0.0;  // all spill — same bids either way
  const DriveOutcome outcome = drive_trace(engine, scheduler, engine_driver);

  expect_stats_identical(outcome.report.total, reference.stats());
  expect_stats_identical(outcome.report.shards.at(0).stats, reference.stats());
  EXPECT_EQ(outcome.report.bids_rejected_backpressure, 0u);
}

TEST(EngineDeterminism, MultiShardReportIsByteIdenticalAcrossThreadCounts) {
  const std::size_t hw = ThreadPool::default_workers();
  std::string baseline;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, hw}) {
    MarketEngine engine(engine_config(4));
    EpochScheduler scheduler(engine, threads);
    const DriveOutcome outcome = drive_trace(engine, scheduler, driver_config());
    const std::string summary = outcome.report.summary_json();
    if (baseline.empty()) {
      baseline = summary;
      // Sanity: the run did real work across several shards.
      ASSERT_GT(outcome.report.total.requests_allocated, 0u);
    } else {
      EXPECT_EQ(summary, baseline) << "divergence at threads=" << threads;
    }
  }
}

TEST(EngineDeterminism, ShardCountChangesResultsButEachCountIsSelfConsistent) {
  // Different shard counts partition the market differently — results may
  // legitimately differ — but the SAME shard count must reproduce exactly.
  for (const std::size_t shards : {std::size_t{2}, std::size_t{4}}) {
    MarketEngine first(engine_config(shards));
    EpochScheduler first_scheduler(first, 2);
    const std::string a =
        drive_trace(first, first_scheduler, driver_config()).report.summary_json();

    MarketEngine second(engine_config(shards));
    EpochScheduler second_scheduler(second, 1);
    const std::string b =
        drive_trace(second, second_scheduler, driver_config()).report.summary_json();
    EXPECT_EQ(a, b) << "shards=" << shards;
  }
}

}  // namespace
}  // namespace decloud::engine

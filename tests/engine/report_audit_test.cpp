#include "engine/report.hpp"

#include <gtest/gtest.h>

#include "common/audit.hpp"
#include "engine/engine.hpp"
#include "engine/epoch_scheduler.hpp"

namespace decloud::engine {
namespace {

// audit_report is always compiled (DECLOUD_AUDIT only gates the call sites
// in MarketEngine::report / EpochScheduler::report), so these tests run in
// every build configuration.

EngineReport cleared_market_report() {
  EngineConfig config;
  config.router.num_shards = 2;
  config.router.x0 = 0.0;
  config.router.x1 = 100.0;
  config.router.y0 = 0.0;
  config.router.y1 = 100.0;
  config.market.consensus.difficulty_bits = 8;
  config.market.num_verifiers = 1;
  config.market.consensus.auction.threads = 1;
  MarketEngine engine(config);

  auction::Request r;
  r.id = RequestId(1);
  r.client = ClientId(1);
  r.submitted = 1;
  r.resources.set(auction::ResourceSchema::kCpu, 1.0);
  r.window_start = 0;
  r.window_end = 1'000'000;
  r.duration = 3600;
  r.bid = 5.0;
  r.location = auction::Location{10.0, 10.0};
  engine.submit(r);

  for (std::uint64_t i = 1; i <= 2; ++i) {
    auction::Offer o;
    o.id = OfferId(i);
    o.provider = ProviderId(i);
    o.submitted = static_cast<Time>(i);
    o.resources.set(auction::ResourceSchema::kCpu, 4.0);
    o.window_start = 0;
    o.window_end = 2'000'000;
    o.bid = 0.1 * static_cast<double>(i);
    o.location = auction::Location{10.0 + static_cast<double>(i), 10.0};
    engine.submit(o);
  }

  EpochScheduler scheduler(engine, /*threads=*/1);
  scheduler.run(/*max_epochs=*/8);
  return scheduler.report();
}

TEST(AuditReport, PassesOnRealEngineReport) {
  const EngineReport report = cleared_market_report();
  ASSERT_GT(report.total.requests_allocated, 0u);  // the market actually cleared
  EXPECT_NO_THROW(audit_report(report));
}

TEST(AuditReport, CatchesWelfareDrift) {
  EngineReport report = cleared_market_report();
  report.total.total_welfare += 1e-9;  // bitwise reconciliation: any drift fails
  EXPECT_THROW(audit_report(report), decloud::audit::audit_error);
}

TEST(AuditReport, CatchesShardOrderViolation) {
  EngineReport report = cleared_market_report();
  ASSERT_GE(report.shards.size(), 2u);
  std::swap(report.shards[0], report.shards[1]);  // breaks the fixed-order contract
  EXPECT_THROW(audit_report(report), decloud::audit::audit_error);
}

TEST(AuditReport, CatchesCounterDrift) {
  EngineReport report = cleared_market_report();
  report.bids_rejected_backpressure += 1;
  EXPECT_THROW(audit_report(report), decloud::audit::audit_error);
}

TEST(AuditReport, CatchesLatencyHistogramTampering) {
  EngineReport report = cleared_market_report();
  report.total.allocation_latency.push_back(3);  // phantom allocations
  EXPECT_THROW(audit_report(report), decloud::audit::audit_error);
}

TEST(AuditReport, CatchesUnderReportedSubmissions) {
  EngineReport report = cleared_market_report();
  ASSERT_GT(report.total.requests_submitted, 0u);
  report.total.requests_submitted -= 1;
  EXPECT_THROW(audit_report(report), decloud::audit::audit_error);
}

}  // namespace
}  // namespace decloud::engine

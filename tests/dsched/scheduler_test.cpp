// Self-tests for the dsched explorer (DESIGN.md §3i): known-racy bodies
// must have ALL their outcomes surfaced, known bugs (lost update, AB-BA
// deadlock, lost wakeup, livelock) must be caught with a replayable and
// minimizable certificate, and exploration must be byte-deterministic
// from its seed.  Suite names carry the lowercase "dsched" prefix so
// `ctest -R dsched` selects exactly the model-checking tier.

#include "dsched/scheduler.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>

#include "dsched/sync.hpp"

namespace decloud::dsched {
namespace {

Options exhaustive() {
  Options options;
  options.mode = Options::Mode::kExhaustive;
  options.max_schedules = 100000;
  options.max_steps = 2000;
  return options;
}

// Two threads each do a read-modify-write of a shared counter as
// separate load and store yield points, so schedules exist where an
// update is lost.  Exploration must surface BOTH final values.
std::function<void()> racy_counter_body(std::shared_ptr<std::set<int>> outcomes) {
  return [outcomes] {
    dsched::atomic<int> counter{0};
    const auto bump = [&] {
      const int seen = counter.load();
      counter.store(seen + 1);
    };
    dsched::thread a(bump);
    dsched::thread b(bump);
    a.join();
    b.join();
    outcomes->insert(counter.load());
  };
}

TEST(dsched_scheduler, RacyCounterSurfacesEveryOutcome) {
  auto outcomes = std::make_shared<std::set<int>>();
  const RunResult result = explore(exhaustive(), racy_counter_body(outcomes));
  EXPECT_FALSE(result.failed) << result.failure;
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(*outcomes, (std::set<int>{1, 2}))
      << "exploration missed an interleaving of the racy counter";
  std::cout << "[dsched] racy counter: " << result.schedules << " schedules, " << result.pruned
            << " pruned\n";
}

// The same race, but asserted on: exploration must find a failing
// schedule, hand back a certificate, and the certificate must replay
// and minimize to the same failure.
std::function<void()> lost_update_body() {
  return [] {
    dsched::atomic<int> counter{0};
    const auto bump = [&] {
      const int seen = counter.load();
      counter.store(seen + 1);
    };
    dsched::thread a(bump);
    dsched::thread b(bump);
    a.join();
    b.join();
    check(counter.load() == 2, "lost update");
  };
}

TEST(dsched_scheduler, FailingScheduleYieldsReplayableCertificate) {
  const RunResult found = explore(exhaustive(), lost_update_body());
  ASSERT_TRUE(found.failed);
  EXPECT_NE(found.failure.find("lost update"), std::string::npos) << found.failure;
  ASSERT_FALSE(found.certificate.empty());
  EXPECT_EQ(found.certificate.rfind("dsched1;", 0), 0u) << found.certificate;

  const RunResult replayed = replay(found.certificate, lost_update_body());
  EXPECT_TRUE(replayed.failed) << "certificate did not reproduce the failure";
  EXPECT_FALSE(replayed.diverged);
  EXPECT_NE(replayed.failure.find("lost update"), std::string::npos) << replayed.failure;
}

TEST(dsched_scheduler, MinimizedCertificateStillReproduces) {
  const RunResult found = explore(exhaustive(), lost_update_body());
  ASSERT_TRUE(found.failed);
  const std::string minimized = minimize(found.certificate, lost_update_body());
  EXPECT_EQ(minimized.rfind("dsched1;", 0), 0u) << minimized;
  const RunResult replayed = replay(minimized, lost_update_body());
  EXPECT_TRUE(replayed.failed);
  EXPECT_FALSE(replayed.diverged);
  EXPECT_LE(minimized.size(), found.certificate.size());
}

TEST(dsched_scheduler, AbBaDeadlockIsDetected) {
  const auto body = [] {
    dsched::mutex a;
    dsched::mutex b;
    dsched::thread t([&] {
      const std::lock_guard<dsched::mutex> hold_b(b);
      const std::lock_guard<dsched::mutex> hold_a(a);
    });
    {
      const std::lock_guard<dsched::mutex> hold_a(a);
      const std::lock_guard<dsched::mutex> hold_b(b);
    }
    t.join();
  };
  const RunResult result = explore(exhaustive(), body);
  ASSERT_TRUE(result.failed);
  EXPECT_NE(result.failure.find("deadlock"), std::string::npos) << result.failure;
  const RunResult replayed = replay(result.certificate, body);
  EXPECT_TRUE(replayed.failed);
  EXPECT_NE(replayed.failure.find("deadlock"), std::string::npos) << replayed.failure;
}

TEST(dsched_scheduler, LostWakeupIsDetected) {
  // Classic bug: the signaller flips the flag and notifies WITHOUT
  // holding the waiter's mutex, so a schedule exists where the notify
  // lands between the waiter's flag check and its park — and is lost.
  const auto body = [] {
    dsched::mutex m;
    dsched::condition_variable cv;
    dsched::atomic<bool> flag{false};
    dsched::thread waiter([&] {
      std::unique_lock<dsched::mutex> lock(m);
      if (!flag.load()) cv.wait(lock);  // also buggy: `if`, not `while`
    });
    dsched::thread signaller([&] {
      flag.store(true);
      cv.notify_one();
    });
    waiter.join();
    signaller.join();
  };
  const RunResult result = explore(exhaustive(), body);
  ASSERT_TRUE(result.failed);
  EXPECT_NE(result.failure.find("lost wakeup"), std::string::npos) << result.failure;
}

TEST(dsched_scheduler, LivelockBudgetIsReported) {
  Options options = exhaustive();
  options.max_steps = 200;
  const auto body = [] {
    dsched::atomic<bool> flag{false};
    dsched::thread spinner([&] {
      while (!flag.load()) {  // nobody ever sets the flag
      }
    });
    spinner.join();
  };
  const RunResult result = explore(options, body);
  ASSERT_TRUE(result.failed);
  EXPECT_NE(result.failure.find("livelock"), std::string::npos) << result.failure;
}

TEST(dsched_scheduler, SleepSetsPruneWithoutChangingTheVerdict) {
  const auto make_body = [] {
    return [] {
      // Two threads touching DIFFERENT objects: a reduction goldmine.
      dsched::atomic<int> x{0};
      dsched::atomic<int> y{0};
      dsched::thread a([&] {
        x.store(1);
        x.store(2);
      });
      dsched::thread b([&] {
        y.store(1);
        y.store(2);
      });
      a.join();
      b.join();
      check(x.load() == 2 && y.load() == 2, "independent writers corrupted each other");
    };
  };
  Options reduced = exhaustive();
  Options unreduced = exhaustive();
  unreduced.sleep_sets = false;
  const RunResult with = explore(reduced, make_body());
  const RunResult without = explore(unreduced, make_body());
  EXPECT_FALSE(with.failed) << with.failure;
  EXPECT_FALSE(without.failed) << without.failure;
  EXPECT_TRUE(with.complete);
  EXPECT_TRUE(without.complete);
  EXPECT_LT(with.schedules, without.schedules)
      << "sleep sets should prune commuting interleavings";
  std::cout << "[dsched] sleep sets: " << with.schedules << " schedules vs " << without.schedules
            << " unreduced\n";
}

TEST(dsched_scheduler, PctIsDeterministicFromItsSeed) {
  Options options;
  options.mode = Options::Mode::kPct;
  options.seed = 2026;
  options.max_schedules = 50;
  options.max_steps = 2000;
  const RunResult first = explore(options, lost_update_body());
  const RunResult second = explore(options, lost_update_body());
  EXPECT_EQ(first.trace_hash, second.trace_hash);
  EXPECT_EQ(first.failed, second.failed);
  EXPECT_EQ(first.certificate, second.certificate);

  options.seed = 2027;
  const RunResult other = explore(options, lost_update_body());
  EXPECT_NE(first.trace_hash, other.trace_hash)
      << "different seeds should explore different schedule samples";
}

TEST(dsched_scheduler, PctFindsTheLostUpdate) {
  Options options;
  options.mode = Options::Mode::kPct;
  options.seed = 3;
  options.max_schedules = 500;
  options.max_steps = 2000;
  const RunResult result = explore(options, lost_update_body());
  EXPECT_TRUE(result.failed) << "500 PCT schedules should hit a depth-1 race";
  if (result.failed) {
    const RunResult replayed = replay(result.certificate, lost_update_body());
    EXPECT_TRUE(replayed.failed);
    EXPECT_FALSE(replayed.diverged);
  }
}

TEST(dsched_scheduler, CertificateRoundTrips) {
  const std::string certificate =
      format_certificate(Options::Mode::kPct, 42, 3, {0, 1, 1, 2, 0});
  EXPECT_EQ(certificate, "dsched1;mode=pct;seed=42;threads=3;choices=0,1,1,2,0");
  const Options parsed = parse_certificate(certificate);
  EXPECT_EQ(parsed.mode, Options::Mode::kReplay);
  EXPECT_EQ(parsed.seed, 42u);
  EXPECT_EQ(parsed.replay_choices, (std::vector<int>{0, 1, 1, 2, 0}));
}

TEST(dsched_scheduler, MalformedCertificatesAreRejected) {
  EXPECT_THROW(parse_certificate(""), std::invalid_argument);
  EXPECT_THROW(parse_certificate("dsched2;choices=1"), std::invalid_argument);
  EXPECT_THROW(parse_certificate("dsched1;seed=1"), std::invalid_argument);
  EXPECT_THROW(parse_certificate("dsched1;bogus=1;choices=0"), std::invalid_argument);
}

TEST(dsched_scheduler, ReplayReportsDivergence) {
  // A single-threaded body can never honour a choice of vthread 5.
  const RunResult result =
      replay("dsched1;mode=replay;seed=1;threads=1;choices=5", [] {
        dsched::atomic<int> x{0};
        x.store(1);
      });
  EXPECT_TRUE(result.failed);
  EXPECT_TRUE(result.diverged);
}

}  // namespace
}  // namespace decloud::dsched

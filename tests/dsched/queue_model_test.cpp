// Exhaustive interleaving exploration of BoundedQueue (DESIGN.md §3i):
// the admission-reconciliation and shutdown-contract models must hold
// under EVERY schedule, and the DFS must complete within budget so the
// verdict is a proof over the modelled yield points, not a sample.

#include <gtest/gtest.h>

#include <iostream>

#include "dsched/models.hpp"
#include "dsched/scheduler.hpp"

namespace decloud::dsched {
namespace {

RunResult explore_model(const char* name) {
  const ModelSpec* spec = find_model(name);
  EXPECT_NE(spec, nullptr) << name;
  const RunResult result = explore(spec->options, spec->make_body());
  std::cout << "[dsched] " << name << ": " << result.schedules << " schedules, " << result.pruned
            << " pruned, complete=" << (result.complete ? "true" : "false") << "\n";
  return result;
}

TEST(dsched_queue_model, AdmissionCountersReconcileUnderAllInterleavings) {
  const RunResult result = explore_model("queue_admission");
  EXPECT_FALSE(result.failed) << result.failure << "\n  " << result.certificate;
  EXPECT_TRUE(result.complete) << "DFS budget too small for a full proof";
  EXPECT_GE(result.max_threads, 3u);  // body + 2 producers
}

TEST(dsched_queue_model, CloseNeverLosesAnAdmittedPush) {
  const RunResult result = explore_model("queue_close");
  EXPECT_FALSE(result.failed) << result.failure << "\n  " << result.certificate;
  EXPECT_TRUE(result.complete) << "DFS budget too small for a full proof";
}

}  // namespace
}  // namespace decloud::dsched

// Schedule exploration of the consensus-critical streaming path
// (DESIGN.md §3i): a 2-shard StreamingMarket with a 2-thread shard
// fan-out must produce a byte-identical EngineReport under every
// sampled interleaving — the determinism claim replicas rely on.  The
// state space here is far beyond exhaustive DFS, so this tier uses
// seeded PCT sampling; CI drives a larger sample through
// tools/dsched_explore.

#include <gtest/gtest.h>

#include <iostream>

#include "dsched/models.hpp"
#include "dsched/scheduler.hpp"

namespace decloud::dsched {
namespace {

TEST(dsched_stream_model, TwoShardMicroEpochReportIsScheduleInvariant) {
  const ModelSpec* spec = find_model("stream_2shard");
  ASSERT_NE(spec, nullptr);
  const RunResult result = explore(spec->options, spec->make_body());
  std::cout << "[dsched] stream_2shard: " << result.schedules << " schedules, last-steps "
            << result.steps << ", max-threads " << result.max_threads << "\n";
  EXPECT_FALSE(result.failed) << result.failure << "\n  " << result.certificate;
  EXPECT_EQ(result.schedules, spec->options.max_schedules);
  EXPECT_GE(result.max_threads, 3u);  // body + 2 scheduler workers
}

TEST(dsched_stream_model, ExplorationIsByteDeterministicFromItsSeed) {
  const ModelSpec* spec = find_model("stream_2shard");
  ASSERT_NE(spec, nullptr);
  Options options = spec->options;
  options.max_schedules = 40;
  const RunResult first = explore(options, spec->make_body());
  const RunResult second = explore(options, spec->make_body());
  EXPECT_FALSE(first.failed) << first.failure;
  EXPECT_EQ(first.trace_hash, second.trace_hash)
      << "the same seed must visit the same schedules";
  EXPECT_EQ(first.schedules, second.schedules);
}

}  // namespace
}  // namespace decloud::dsched

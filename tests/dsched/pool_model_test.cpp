// Exhaustive interleaving exploration of ThreadPool (DESIGN.md §3i):
// nested caller-helping never deadlocks, exception propagation is
// deterministic, and shutdown never loses a wakeup — proven over every
// schedule of the modelled yield points, not sampled.

#include <gtest/gtest.h>

#include <iostream>

#include "dsched/models.hpp"
#include "dsched/scheduler.hpp"

namespace decloud::dsched {
namespace {

RunResult explore_model(const char* name) {
  const ModelSpec* spec = find_model(name);
  EXPECT_NE(spec, nullptr) << name;
  const RunResult result = explore(spec->options, spec->make_body());
  std::cout << "[dsched] " << name << ": " << result.schedules << " schedules, " << result.pruned
            << " pruned, complete=" << (result.complete ? "true" : "false") << "\n";
  return result;
}

TEST(dsched_pool_model, NestedCallerHelpingNeverDeadlocks) {
  const RunResult result = explore_model("pool_nested");
  EXPECT_FALSE(result.failed) << result.failure << "\n  " << result.certificate;
  EXPECT_TRUE(result.complete) << "DFS budget too small for a full proof";
}

TEST(dsched_pool_model, LowestChunkExceptionWinsUnderEverySchedule) {
  const RunResult result = explore_model("pool_exception");
  EXPECT_FALSE(result.failed) << result.failure << "\n  " << result.certificate;
  EXPECT_TRUE(result.complete) << "DFS budget too small for a full proof";
}

TEST(dsched_pool_model, ShutdownNeverLosesAWakeup) {
  const RunResult result = explore_model("pool_shutdown");
  EXPECT_FALSE(result.failed) << result.failure << "\n  " << result.certificate;
  EXPECT_TRUE(result.complete) << "DFS budget too small for a full proof";
  EXPECT_GE(result.max_threads, 3u);  // body + 2 parked workers
}

}  // namespace
}  // namespace decloud::dsched

// The continuous market's headline contract (ISSUE 7, mirroring PR 6's
// dense-vs-pruned discipline): batch mode is the streaming mode's
// reference oracle.  A stream whose micro-epoch triggers fire on the batch
// driver's epoch boundaries must produce a BYTE-identical EngineReport
// summary to the batch run — same trace, same shard layout — at 1, 2 and
// hardware scheduler threads, with and without an active fault plan.
// summary_json prints every double %.17g, so equality here is bit
// equality of every welfare/settlement sum in every shard.
#include <gtest/gtest.h>

#include <string>

#include "common/thread_pool.hpp"
#include "engine/driver.hpp"
#include "engine/engine.hpp"
#include "engine/epoch_scheduler.hpp"
#include "fault/fault.hpp"
#include "stream/stream_driver.hpp"
#include "stream/streaming_market.hpp"

namespace decloud::stream {
namespace {

constexpr std::size_t kBatch = 16;  // batch size == micro-epoch bid trigger

engine::EngineConfig engine_config(std::size_t shards, const char* fault_plan) {
  engine::EngineConfig config;
  config.router.num_shards = shards;
  config.router.x0 = 0.0;
  config.router.x1 = 100.0;
  config.router.y0 = 0.0;
  config.router.y1 = 100.0;
  config.market.consensus.difficulty_bits = 6;
  config.market.num_verifiers = 1;
  config.market.consensus.auction.threads = 1;
  config.market.consensus.max_remine_attempts = 1;
  if (fault_plan != nullptr) {
    config.fault_plan = fault::FaultPlan::parse(fault_plan);
    config.fault_seed = 3;
  }
  return config;
}

engine::TraceDriverConfig driver_config() {
  engine::TraceDriverConfig driver;
  driver.workload.num_requests = 60;
  driver.workload.num_offers = 30;
  driver.located_fraction = 0.8;
  driver.bids_per_epoch = kBatch;
  driver.seed = 7;
  return driver;
}

std::string batch_summary(std::size_t shards, std::size_t threads, const char* fault_plan) {
  engine::MarketEngine engine(engine_config(shards, fault_plan));
  engine::EpochScheduler scheduler(engine, threads);
  return drive_trace(engine, scheduler, driver_config()).report.summary_json();
}

std::string stream_summary(std::size_t shards, std::size_t threads, const char* fault_plan,
                           std::size_t bid_trigger, std::size_t watermark) {
  StreamConfig config;
  config.engine = engine_config(shards, fault_plan);
  config.triggers.bids = bid_trigger;
  config.triggers.watermark = watermark;
  config.threads = threads;
  StreamingMarket market(config);
  return drive_trace_stream(market, driver_config()).drive.report.summary_json();
}

TEST(StreamDeterminism, AlignedStreamMatchesBatchByteForByteAcrossThreads) {
  const std::size_t hw = ThreadPool::default_workers();
  const std::string oracle = batch_summary(4, 1, nullptr);
  ASSERT_NE(oracle.find("\"micro_epochs\""), std::string::npos);
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, hw}) {
    EXPECT_EQ(batch_summary(4, threads, nullptr), oracle) << "batch threads=" << threads;
    // Bid-count trigger on the batch boundary.
    EXPECT_EQ(stream_summary(4, threads, nullptr, kBatch, 0), oracle)
        << "stream(bids) threads=" << threads;
    // Watermark trigger: the stream clocks one tick per submission, so a
    // watermark of kBatch closes on the same boundaries.
    EXPECT_EQ(stream_summary(4, threads, nullptr, 0, kBatch), oracle)
        << "stream(watermark) threads=" << threads;
  }
}

TEST(StreamDeterminism, ChaosAlignedStreamMatchesBatchByteForByte) {
  // Faults exercised mid-stream: ingest rejections (site = per-shard
  // ingest sequence, identical across modes because both count every
  // submission), withheld reveals, dishonest votes and client denials
  // inside the shard rounds.  The plan is deterministic, so batch and
  // aligned streaming still agree byte-for-byte.
  static constexpr const char* kPlan =
      "reject_ingest:p=0.1;withhold_reveal:p=0.2;dishonest_vote:p=0.25;deny_agreement:p=0.2";
  const std::size_t hw = ThreadPool::default_workers();
  const std::string oracle = batch_summary(4, 1, kPlan);
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, hw}) {
    EXPECT_EQ(batch_summary(4, threads, kPlan), oracle) << "batch threads=" << threads;
    EXPECT_EQ(stream_summary(4, threads, kPlan, kBatch, 0), oracle)
        << "stream threads=" << threads;
  }
  // The chaos run really was chaotic — otherwise this test degrades into
  // the clean variant silently.
  EXPECT_NE(oracle, batch_summary(4, 1, nullptr));
}

TEST(StreamDeterminism, StreamIsSelfConsistentForAnyTriggerConfig) {
  // Unaligned triggers legitimately differ from batch, but the SAME
  // trigger config must reproduce exactly at every thread count.
  const std::size_t hw = ThreadPool::default_workers();
  for (const auto& [bids, watermark] : {std::pair<std::size_t, std::size_t>{7, 0},
                                        {0, 11},
                                        {5, 13}}) {
    const std::string baseline = stream_summary(3, 1, nullptr, bids, watermark);
    for (const std::size_t threads : {std::size_t{2}, hw}) {
      EXPECT_EQ(stream_summary(3, threads, nullptr, bids, watermark), baseline)
          << "bids=" << bids << " watermark=" << watermark << " threads=" << threads;
    }
  }
}

TEST(StreamDeterminism, SingleBatchStreamFlushMatchesBatchMode) {
  // bids_per_epoch = 0 batch mode submits everything then ticks once; the
  // stream analogue closes nothing until flush().  Byte-identical too.
  engine::TraceDriverConfig driver = driver_config();
  driver.bids_per_epoch = 0;

  engine::MarketEngine engine(engine_config(2, nullptr));
  engine::EpochScheduler scheduler(engine, 1);
  const std::string oracle = drive_trace(engine, scheduler, driver).report.summary_json();

  StreamConfig config;
  config.engine = engine_config(2, nullptr);
  config.triggers.bids = 0;
  config.triggers.watermark = 0;
  StreamingMarket market(config);
  EXPECT_EQ(drive_trace_stream(market, driver).drive.report.summary_json(), oracle);
}

}  // namespace
}  // namespace decloud::stream

// StreamingMarket unit behavior: trigger arithmetic, flush/drain
// semantics, residue carry, and the micro-epoch == scheduler-tick
// identity the report audit enforces.
#include <gtest/gtest.h>

#include <string>

#include "engine/driver.hpp"
#include "stream/stream_driver.hpp"
#include "stream/streaming_market.hpp"
#include "trace/workload.hpp"

namespace decloud::stream {
namespace {

engine::EngineConfig engine_config(std::size_t shards) {
  engine::EngineConfig config;
  config.router.num_shards = shards;
  config.router.x0 = 0.0;
  config.router.x1 = 100.0;
  config.router.y0 = 0.0;
  config.router.y1 = 100.0;
  config.market.consensus.difficulty_bits = 6;
  config.market.num_verifiers = 1;
  config.market.consensus.auction.threads = 1;
  return config;
}

StreamConfig stream_config(std::size_t shards, std::size_t bids, std::size_t watermark) {
  StreamConfig config;
  config.engine = engine_config(shards);
  config.triggers.bids = bids;
  config.triggers.watermark = watermark;
  return config;
}

engine::TraceDriverConfig driver_config(std::size_t requests, std::size_t offers) {
  engine::TraceDriverConfig driver;
  driver.workload.num_requests = requests;
  driver.workload.num_offers = offers;
  driver.located_fraction = 0.8;
  driver.seed = 7;
  return driver;
}

/// A trace stream to feed by hand.
engine::TraceStream make_stream(const engine::TraceDriverConfig& driver,
                                const engine::EngineConfig& config) {
  return engine::make_trace_stream(driver, config);
}

TEST(StreamingMarketTest, BidCountTriggerClosesEveryN) {
  StreamingMarket market(stream_config(1, /*bids=*/10, /*watermark=*/0));
  const engine::TraceStream trace = make_stream(driver_config(20, 10), market.config().engine);
  ASSERT_EQ(trace.order.size(), 30u);

  std::size_t closes = 0;
  const std::size_t n_req = trace.snapshot.requests.size();
  for (std::size_t done = 0; done < 25; ++done) {
    const std::size_t i = trace.order[done];
    const StreamAdmission admission = i < n_req
                                          ? market.submit(trace.snapshot.requests[i])
                                          : market.submit(trace.snapshot.offers[i - n_req]);
    if (admission.closed_micro_epoch) ++closes;
    // The trigger fires exactly on the 10th, 20th, … submission.
    EXPECT_EQ(admission.closed_micro_epoch, (done + 1) % 10 == 0) << "at " << done;
  }
  EXPECT_EQ(closes, 2u);
  EXPECT_EQ(market.micro_epochs(), 2u);

  // 5 submissions pending → flush closes one more; a second flush is a
  // no-op (no pending submissions → no tick, no epoch drift).
  EXPECT_TRUE(market.flush());
  EXPECT_EQ(market.micro_epochs(), 3u);
  EXPECT_FALSE(market.flush());
  EXPECT_EQ(market.micro_epochs(), 3u);
}

TEST(StreamingMarketTest, WatermarkTriggerFiresOnLogicalClock) {
  // Per-submission clocking: watermark K behaves as "close every K events".
  StreamingMarket market(stream_config(1, /*bids=*/0, /*watermark=*/5));
  const engine::TraceStream trace = make_stream(driver_config(10, 5), market.config().engine);
  const std::size_t n_req = trace.snapshot.requests.size();
  for (std::size_t done = 0; done < 12; ++done) {
    const std::size_t i = trace.order[done];
    const StreamAdmission admission = i < n_req
                                          ? market.submit(trace.snapshot.requests[i])
                                          : market.submit(trace.snapshot.offers[i - n_req]);
    EXPECT_EQ(admission.closed_micro_epoch, (done + 1) % 5 == 0) << "at " << done;
  }
  EXPECT_EQ(market.micro_epochs(), 2u);

  // External event-time progress closes through the same trigger: 2 ticks
  // are pending since the last close, 3 more reach the watermark.
  EXPECT_FALSE(market.advance_clock(2));
  EXPECT_TRUE(market.advance_clock(1));
  EXPECT_EQ(market.micro_epochs(), 3u);
  EXPECT_EQ(market.logical_clock(), 15u);
}

TEST(StreamingMarketTest, ManualMarketOnlyFlushCloses) {
  StreamingMarket market(stream_config(1, 0, 0));
  const engine::TraceStream trace = make_stream(driver_config(8, 4), market.config().engine);
  const std::size_t n_req = trace.snapshot.requests.size();
  for (const std::size_t i : trace.order) {
    const StreamAdmission admission = i < n_req
                                          ? market.submit(trace.snapshot.requests[i])
                                          : market.submit(trace.snapshot.offers[i - n_req]);
    EXPECT_FALSE(admission.closed_micro_epoch);
  }
  EXPECT_EQ(market.micro_epochs(), 0u);
  EXPECT_TRUE(market.flush());
  EXPECT_EQ(market.micro_epochs(), 1u);
}

TEST(StreamingMarketTest, ResidueCarriesAndDrainClears) {
  StreamConfig config = stream_config(2, /*bids=*/8, 0);
  StreamingMarket market(config);
  const StreamDriveOutcome outcome =
      drive_trace_stream(market, driver_config(40, 20));

  // Several micro-epochs ran, residue was carried between them, and the
  // drain tail bounded it (max_resubmissions) — the report reconciles all
  // of it (audit_report runs inside report() when audits are on).
  EXPECT_GT(outcome.micro_epochs, 2u);
  EXPECT_GT(outcome.drive.report.total.bids_carried, 0u);
  EXPECT_GT(outcome.drive.report.total.requests_allocated, 0u);
  EXPECT_EQ(outcome.drive.report.epochs, outcome.micro_epochs + outcome.drain_epochs);
  EXPECT_EQ(outcome.drive.report.micro_epochs, outcome.drive.report.epochs);
}

TEST(StreamingMarketTest, ObservabilityExportsCarryStreamCounters) {
  StreamConfig config = stream_config(1, /*bids=*/6, 0);
  config.engine.observability = true;
  StreamingMarket market(config);
  (void)drive_trace_stream(market, driver_config(12, 6));

  const std::string metrics = market.metrics_json();
  EXPECT_NE(metrics.find("stream.micro_epochs"), std::string::npos);
  EXPECT_NE(metrics.find("stream.bids_submitted"), std::string::npos);
  EXPECT_NE(metrics.find("stream.close_bid_count"), std::string::npos);
  const std::string trace = market.trace_json();
  EXPECT_NE(trace.find("micro_epoch"), std::string::npos);
}

TEST(StreamingMarketTest, RejectedSubmissionsStillAdvanceTriggers) {
  // A fault plan that rejects every ingest: the market admits nothing,
  // yet micro-epochs still close on the submission count — trigger state
  // must track the SEQUENCE, not admissions (batch mode ticks on rejected
  // batches too, and alignment depends on matching that).
  StreamConfig config = stream_config(1, /*bids=*/5, 0);
  config.engine.fault_plan = fault::FaultPlan::parse("reject_ingest:p=1.0");
  StreamingMarket market(config);
  const engine::TraceStream trace = make_stream(driver_config(10, 5), market.config().engine);
  const std::size_t n_req = trace.snapshot.requests.size();
  std::size_t rejected = 0;
  for (const std::size_t i : trace.order) {
    const StreamAdmission admission = i < n_req
                                          ? market.submit(trace.snapshot.requests[i])
                                          : market.submit(trace.snapshot.offers[i - n_req]);
    if (!admission.engine.admitted()) ++rejected;
  }
  EXPECT_EQ(rejected, trace.order.size());
  EXPECT_EQ(market.micro_epochs(), trace.order.size() / 5);
}

}  // namespace
}  // namespace decloud::stream

#include "trace/google_trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "stats/summary.hpp"

namespace decloud::trace {
namespace {

std::vector<auction::Request> sample(std::size_t n, std::uint64_t seed) {
  GoogleTraceGenerator gen;
  Rng rng(seed);
  std::vector<auction::Request> out;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(gen.make_request(RequestId(i), ClientId(i), static_cast<Time>(i), rng));
  }
  return out;
}

TEST(GoogleTrace, RequestsAreStructurallyValid) {
  for (const auto& r : sample(500, 1)) EXPECT_NO_THROW(auction::validate(r));
}

TEST(GoogleTrace, ResourcesWithinM5Envelope) {
  const GoogleTraceConfig cfg;
  for (const auto& r : sample(500, 2)) {
    EXPECT_GT(r.resources.get(auction::ResourceSchema::kCpu), 0.0);
    EXPECT_LE(r.resources.get(auction::ResourceSchema::kCpu), cfg.max_cpu);
    EXPECT_LE(r.resources.get(auction::ResourceSchema::kMemory), cfg.max_memory_gb);
    EXPECT_LE(r.resources.get(auction::ResourceSchema::kDisk), cfg.max_disk_gb);
  }
}

TEST(GoogleTrace, HeavyTailedTaskSizes) {
  // Google-trace shape: most tasks small, p95 far above the median.
  std::vector<double> cpus;
  for (const auto& r : sample(2000, 3)) cpus.push_back(r.resources.get(auction::ResourceSchema::kCpu));
  const double median = stats::percentile(cpus, 0.5);
  const double p95 = stats::percentile(cpus, 0.95);
  EXPECT_LT(median, 3.0);
  EXPECT_GT(p95 / median, 2.5);
}

TEST(GoogleTrace, CpuMemoryPositivelyCorrelated) {
  double sum_c = 0;
  double sum_m = 0;
  double sum_cc = 0;
  double sum_mm = 0;
  double sum_cm = 0;
  const auto reqs = sample(3000, 4);
  const auto n = static_cast<double>(reqs.size());
  for (const auto& r : reqs) {
    const double c = r.resources.get(auction::ResourceSchema::kCpu);
    const double m = r.resources.get(auction::ResourceSchema::kMemory);
    sum_c += c;
    sum_m += m;
    sum_cc += c * c;
    sum_mm += m * m;
    sum_cm += c * m;
  }
  const double cov = sum_cm / n - (sum_c / n) * (sum_m / n);
  const double var_c = sum_cc / n - (sum_c / n) * (sum_c / n);
  const double var_m = sum_mm / n - (sum_m / n) * (sum_m / n);
  const double rho = cov / std::sqrt(var_c * var_m);
  EXPECT_GT(rho, 0.3);  // the trace exhibits ρ ≈ 0.5
}

TEST(GoogleTrace, DurationsRespectMinimumAndWindowSlack) {
  const GoogleTraceConfig cfg;
  for (const auto& r : sample(500, 5)) {
    EXPECT_GE(r.duration, cfg.min_duration);
    EXPECT_GE(r.window_end - r.window_start, r.duration);
  }
}

TEST(GoogleTrace, MedianDurationIsMinutesScale) {
  std::vector<double> durations;
  for (const auto& r : sample(2000, 6)) durations.push_back(static_cast<double>(r.duration));
  const double median = stats::percentile(durations, 0.5);
  EXPECT_GT(median, 5 * 60.0);     // above 5 minutes
  EXPECT_LT(median, 4 * 3600.0);   // below 4 hours
}

TEST(GoogleTrace, DeterministicGivenSeed) {
  const auto a = sample(50, 7);
  const auto b = sample(50, 7);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].resources, b[i].resources);
    EXPECT_EQ(a[i].duration, b[i].duration);
  }
}

TEST(GoogleTrace, BidLeftUnpricedForValuationModel) {
  for (const auto& r : sample(20, 8)) EXPECT_DOUBLE_EQ(r.bid, 0.0);
}

}  // namespace
}  // namespace decloud::trace

#include "trace/google_csv.hpp"

#include <gtest/gtest.h>

namespace decloud::trace {
namespace {

constexpr const char* kGoodCsv =
    "# submit,client,cpu,mem,disk,duration\n"
    "0,1,2.0,8.0,20.0,3600\n"
    "60,2,0.5,1.5,5.0,600\n"
    "\n"
    "120,1,16.0,64.0,512.0,7200\n";

TEST(GoogleCsv, ParsesWellFormedRows) {
  const auto result = load_google_csv(std::string(kGoodCsv));
  EXPECT_TRUE(result.clean());
  ASSERT_EQ(result.requests.size(), 3u);
  const auto& r0 = result.requests[0];
  EXPECT_EQ(r0.client, ClientId(1));
  EXPECT_EQ(r0.submitted, 0);
  EXPECT_DOUBLE_EQ(r0.resources.get(auction::ResourceSchema::kCpu), 2.0);
  EXPECT_DOUBLE_EQ(r0.resources.get(auction::ResourceSchema::kMemory), 8.0);
  EXPECT_EQ(r0.duration, 3600);
  EXPECT_DOUBLE_EQ(r0.bid, 0.0);  // priced later by the valuation model
  EXPECT_NO_THROW(auction::validate(r0));
}

TEST(GoogleCsv, CommentsAndBlankLinesSkipped) {
  const auto result = load_google_csv(std::string("# only comments\n\n\n"));
  EXPECT_TRUE(result.clean());
  EXPECT_TRUE(result.requests.empty());
}

TEST(GoogleCsv, IdsStartAtConfiguredBase) {
  CsvOptions opt;
  opt.first_request_id = 100;
  const auto result = load_google_csv(std::string(kGoodCsv), opt);
  ASSERT_EQ(result.requests.size(), 3u);
  EXPECT_EQ(result.requests[0].id, RequestId(100));
  EXPECT_EQ(result.requests[2].id, RequestId(102));
}

TEST(GoogleCsv, WindowSlackApplied) {
  CsvOptions opt;
  opt.window_slack = 2.0;
  const auto result = load_google_csv(std::string("0,1,1,1,1,100\n"), opt);
  ASSERT_EQ(result.requests.size(), 1u);
  EXPECT_EQ(result.requests[0].window_end - result.requests[0].window_start, 200);
}

TEST(GoogleCsv, CapsApplied) {
  CsvOptions opt;
  opt.max_cpu = 8.0;
  opt.max_memory_gb = 32.0;
  const auto result = load_google_csv(std::string("0,1,100,100,100,60\n"), opt);
  ASSERT_EQ(result.requests.size(), 1u);
  EXPECT_DOUBLE_EQ(result.requests[0].resources.get(auction::ResourceSchema::kCpu), 8.0);
  EXPECT_DOUBLE_EQ(result.requests[0].resources.get(auction::ResourceSchema::kMemory), 32.0);
  EXPECT_DOUBLE_EQ(result.requests[0].resources.get(auction::ResourceSchema::kDisk), 100.0);
}

TEST(GoogleCsv, WrongFieldCountReported) {
  const auto result = load_google_csv(std::string("0,1,2.0,8.0,20.0\n"));
  EXPECT_TRUE(result.requests.empty());
  ASSERT_EQ(result.errors.size(), 1u);
  EXPECT_NE(result.errors[0].find("line 1"), std::string::npos);
  EXPECT_NE(result.errors[0].find("6 fields"), std::string::npos);
}

TEST(GoogleCsv, NonNumericReported) {
  const auto result = load_google_csv(std::string("0,1,abc,8.0,20.0,60\n"));
  EXPECT_TRUE(result.requests.empty());
  ASSERT_EQ(result.errors.size(), 1u);
  EXPECT_NE(result.errors[0].find("non-numeric"), std::string::npos);
}

TEST(GoogleCsv, OutOfDomainReported) {
  const auto bad_cpu = load_google_csv(std::string("0,1,0,8,20,60\n"));
  EXPECT_EQ(bad_cpu.errors.size(), 1u);
  const auto bad_duration = load_google_csv(std::string("0,1,1,8,20,0\n"));
  EXPECT_EQ(bad_duration.errors.size(), 1u);
  const auto negative_submit = load_google_csv(std::string("-5,1,1,8,20,60\n"));
  EXPECT_EQ(negative_submit.errors.size(), 1u);
}

TEST(GoogleCsv, BadRowsDoNotPoisonGoodOnes) {
  const auto result = load_google_csv(std::string("0,1,1,1,1,60\njunk\n0,2,2,2,2,120\n"));
  EXPECT_EQ(result.requests.size(), 2u);
  EXPECT_EQ(result.errors.size(), 1u);
}

TEST(GoogleCsv, CrLfHandled) {
  const auto result = load_google_csv(std::string("0,1,1,1,1,60\r\n"));
  EXPECT_TRUE(result.clean());
  EXPECT_EQ(result.requests.size(), 1u);
}

TEST(GoogleCsv, ZeroMemoryAndDiskOmitTypes) {
  // Zero columns mean "does not care" — the resource types stay undeclared
  // so the QoM does not penalize their absence.
  const auto result = load_google_csv(std::string("0,1,1,0,0,60\n"));
  ASSERT_EQ(result.requests.size(), 1u);
  EXPECT_FALSE(result.requests[0].resources.has(auction::ResourceSchema::kMemory));
  EXPECT_FALSE(result.requests[0].resources.has(auction::ResourceSchema::kDisk));
}

}  // namespace
}  // namespace decloud::trace

#include "trace/kl_shaper.hpp"

#include <gtest/gtest.h>

#include "common/ensure.hpp"

namespace decloud::trace {
namespace {

TEST(KlShaper, ZeroLambdaGivesHighSimilarity) {
  KlShaperConfig kc;
  Rng rng(1);
  const auto m = make_shaped_market(kc, auction::AuctionConfig{}, 0.0, rng);
  EXPECT_GT(m.similarity, 0.8);
  EXPECT_LT(m.kl_divergence, 0.2);
}

TEST(KlShaper, FullLambdaGivesLowSimilarity) {
  KlShaperConfig kc;
  Rng rng(2);
  const auto m = make_shaped_market(kc, auction::AuctionConfig{}, 1.0, rng);
  EXPECT_LT(m.similarity, 0.3);
}

TEST(KlShaper, SimilarityDecreasesWithLambda) {
  KlShaperConfig kc;
  double prev = 2.0;
  for (const double lam : {0.0, 0.4, 0.8}) {
    Rng rng(3);  // same stream per point isolates the λ effect
    const auto m = make_shaped_market(kc, auction::AuctionConfig{}, lam, rng);
    EXPECT_LT(m.similarity, prev + 1e-9) << "λ = " << lam;
    prev = m.similarity;
  }
}

TEST(KlShaper, BuildsRequestedPopulation) {
  KlShaperConfig kc;
  kc.num_requests = 55;
  kc.num_offers = 23;
  Rng rng(4);
  const auto m = make_shaped_market(kc, auction::AuctionConfig{}, 0.5, rng);
  EXPECT_EQ(m.snapshot.requests.size(), 55u);
  EXPECT_EQ(m.snapshot.offers.size(), 23u);
}

TEST(KlShaper, RequestsCarryFlexibleSignificance) {
  KlShaperConfig kc;
  kc.request_significance = 0.8;
  Rng rng(5);
  const auto m = make_shaped_market(kc, auction::AuctionConfig{}, 0.2, rng);
  for (const auto& r : m.snapshot.requests) {
    EXPECT_DOUBLE_EQ(r.significance_of(auction::ResourceSchema::kCpu), 0.8);
    EXPECT_FALSE(r.is_strict(auction::ResourceSchema::kCpu));
  }
}

TEST(KlShaper, SnapshotIsValidAndPriced) {
  KlShaperConfig kc;
  Rng rng(6);
  const auto m = make_shaped_market(kc, auction::AuctionConfig{}, 0.6, rng);
  for (const auto& r : m.snapshot.requests) {
    EXPECT_NO_THROW(auction::validate(r));
    EXPECT_GT(r.bid, 0.0);
  }
  for (const auto& o : m.snapshot.offers) EXPECT_NO_THROW(auction::validate(o));
}

TEST(KlShaper, ShiftedClassConcentratesDemand) {
  KlShaperConfig kc;
  kc.shifted_class = 3;  // m5.4xlarge
  Rng rng(7);
  const auto m = make_shaped_market(kc, auction::AuctionConfig{}, 1.0, rng);
  // At λ = 1 every request targets the 16-core class (load ∈ [0.5, 1]).
  for (const auto& r : m.snapshot.requests) {
    EXPECT_GE(r.resources.get(auction::ResourceSchema::kCpu), 8.0 - 1e-9);
  }
}

TEST(KlShaper, InvalidLambdaRejected) {
  KlShaperConfig kc;
  Rng rng(8);
  EXPECT_THROW(make_shaped_market(kc, auction::AuctionConfig{}, -0.1, rng), precondition_error);
  EXPECT_THROW(make_shaped_market(kc, auction::AuctionConfig{}, 1.1, rng), precondition_error);
}

}  // namespace
}  // namespace decloud::trace

#include "trace/ec2_catalog.hpp"

#include <gtest/gtest.h>

#include "auction/bid.hpp"
#include "common/ensure.hpp"

namespace decloud::trace {
namespace {

TEST(M5Family, MatchesPaperEnvelope) {
  // "providers' resources in a range between 2-16 CPU cores and 8-64 GB RAM"
  const auto family = m5_family();
  ASSERT_EQ(family.size(), 4u);
  EXPECT_DOUBLE_EQ(family.front().vcpus, 2.0);
  EXPECT_DOUBLE_EQ(family.back().vcpus, 16.0);
  EXPECT_DOUBLE_EQ(family.front().memory_gb, 8.0);
  EXPECT_DOUBLE_EQ(family.back().memory_gb, 64.0);
}

TEST(M5Family, PricingScalesLinearlyWithSize) {
  const auto family = m5_family();
  for (std::size_t i = 1; i < family.size(); ++i) {
    EXPECT_NEAR(family[i].price_per_hour / family[i - 1].price_per_hour, 2.0, 1e-9);
    EXPECT_NEAR(family[i].vcpus / family[i - 1].vcpus, 2.0, 1e-9);
  }
  EXPECT_DOUBLE_EQ(family[0].price_per_hour, 0.096);  // 2018 us-east-1 m5.large
}

TEST(Ec2OfferFactory, OfferCarriesCatalogResources) {
  Ec2OfferFactory factory({.cost_spread = 0.0});
  Rng rng(1);
  const auto o = factory.make_offer_of_type(OfferId(7), ProviderId(3), 100, m5_family()[1], rng);
  EXPECT_EQ(o.id, OfferId(7));
  EXPECT_EQ(o.provider, ProviderId(3));
  EXPECT_EQ(o.submitted, 100);
  EXPECT_DOUBLE_EQ(o.resources.get(auction::ResourceSchema::kCpu), 4.0);
  EXPECT_DOUBLE_EQ(o.resources.get(auction::ResourceSchema::kMemory), 16.0);
  EXPECT_NO_THROW(auction::validate(o));
}

TEST(Ec2OfferFactory, CostIsPricePerHourTimesWindow) {
  Ec2OfferFactory factory({.window_length = 2 * 3600, .cost_spread = 0.0});
  Rng rng(1);
  const auto o = factory.make_offer_of_type(OfferId(0), ProviderId(0), 0, m5_family()[0], rng);
  EXPECT_NEAR(o.bid, 0.096 * 2.0, 1e-12);
  EXPECT_EQ(o.window_length(), 2 * 3600);
}

TEST(Ec2OfferFactory, JitterStaysWithinSpread) {
  Ec2OfferFactory factory({.window_length = 3600, .cost_spread = 0.1});
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const auto o = factory.make_offer_of_type(OfferId(0), ProviderId(0), 0, m5_family()[2], rng);
    EXPECT_GE(o.bid, 0.384 * 0.9 - 1e-12);
    EXPECT_LE(o.bid, 0.384 * 1.1 + 1e-12);
  }
}

TEST(Ec2OfferFactory, UniformSamplingCoversFamily) {
  Ec2OfferFactory factory;
  Rng rng(9);
  std::array<int, 4> counts{};
  for (std::uint64_t i = 0; i < 400; ++i) {
    const auto o = factory.make_offer(OfferId(i), ProviderId(0), 0, rng);
    const double cpus = o.resources.get(auction::ResourceSchema::kCpu);
    for (std::size_t k = 0; k < 4; ++k) {
      if (cpus == m5_family()[k].vcpus) counts[k]++;
    }
  }
  for (const int c : counts) EXPECT_GT(c, 50);  // ~100 each
}

TEST(Ec2OfferFactory, WeightedSamplingFollowsWeights) {
  Ec2OfferFactory factory({.type_weights = {0.0, 0.0, 0.0, 1.0}});
  Rng rng(2);
  for (std::uint64_t i = 0; i < 50; ++i) {
    const auto o = factory.make_offer(OfferId(i), ProviderId(0), 0, rng);
    EXPECT_DOUBLE_EQ(o.resources.get(auction::ResourceSchema::kCpu), 16.0);
  }
}

TEST(Ec2OfferFactory, WrongWeightCountRejected) {
  Ec2OfferFactory factory({.type_weights = {1.0, 2.0}});
  Rng rng(2);
  EXPECT_THROW(factory.make_offer(OfferId(0), ProviderId(0), 0, rng), precondition_error);
}

}  // namespace
}  // namespace decloud::trace

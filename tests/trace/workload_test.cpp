#include "trace/workload.hpp"

#include <gtest/gtest.h>

#include <set>

namespace decloud::trace {
namespace {

TEST(Workload, BuildsRequestedCounts) {
  WorkloadConfig wc;
  wc.num_requests = 37;
  wc.num_offers = 13;
  Rng rng(1);
  const auto s = make_workload(wc, auction::AuctionConfig{}, rng);
  EXPECT_EQ(s.requests.size(), 37u);
  EXPECT_EQ(s.offers.size(), 13u);
}

TEST(Workload, MultiRequestClientsExist) {
  // requests_per_client = 2 → roughly half as many clients as requests;
  // exercises the "exclude all bids of the same participant" rule.
  WorkloadConfig wc;
  wc.num_requests = 40;
  wc.requests_per_client = 2.0;
  Rng rng(2);
  const auto s = make_workload(wc, auction::AuctionConfig{}, rng);
  std::set<ClientId> clients;
  for (const auto& r : s.requests) clients.insert(r.client);
  EXPECT_LE(clients.size(), 21u);
  EXPECT_GE(clients.size(), 19u);
}

TEST(Workload, AllBidsArePositiveAfterValuation) {
  WorkloadConfig wc;
  wc.num_requests = 100;
  wc.num_offers = 40;
  Rng rng(3);
  const auto s = make_workload(wc, auction::AuctionConfig{}, rng);
  for (const auto& r : s.requests) EXPECT_GT(r.bid, 0.0);
  for (const auto& o : s.offers) EXPECT_GT(o.bid, 0.0);
}

TEST(Workload, SnapshotPassesValidation) {
  WorkloadConfig wc;
  Rng rng(4);
  const auto s = make_workload(wc, auction::AuctionConfig{}, rng);
  for (const auto& r : s.requests) EXPECT_NO_THROW(auction::validate(r));
  for (const auto& o : s.offers) EXPECT_NO_THROW(auction::validate(o));
}

TEST(Workload, DeterministicGivenSeed) {
  WorkloadConfig wc;
  Rng a(5);
  Rng b(5);
  const auto s1 = make_workload(wc, auction::AuctionConfig{}, a);
  const auto s2 = make_workload(wc, auction::AuctionConfig{}, b);
  ASSERT_EQ(s1.requests.size(), s2.requests.size());
  for (std::size_t i = 0; i < s1.requests.size(); ++i) {
    EXPECT_DOUBLE_EQ(s1.requests[i].bid, s2.requests[i].bid);
  }
}

TEST(AssignValuations, RespectsCoefficientRange) {
  // With coeff range [1, 1] the valuation equals the base cost exactly, so
  // re-running with [0.5, 0.5] must halve every bid.
  WorkloadConfig wc;
  wc.num_requests = 30;
  wc.num_offers = 10;
  wc.valuation.coeff_lo = wc.valuation.coeff_hi = 1.0;
  Rng rng(6);
  const auto s1 = make_workload(wc, auction::AuctionConfig{}, rng);

  wc.valuation.coeff_lo = wc.valuation.coeff_hi = 0.5;
  Rng rng2(6);
  const auto s2 = make_workload(wc, auction::AuctionConfig{}, rng2);
  for (std::size_t i = 0; i < s1.requests.size(); ++i) {
    EXPECT_NEAR(s2.requests[i].bid, 0.5 * s1.requests[i].bid, 1e-9);
  }
}

TEST(AssignValuations, PreexistingBidsUntouched) {
  WorkloadConfig wc;
  Rng rng(7);
  auto s = make_workload(wc, auction::AuctionConfig{}, rng);
  const double fixed = 123.0;
  s.requests[0].bid = fixed;
  Rng rng2(8);
  assign_valuations(s, auction::AuctionConfig{}, wc.valuation, rng2);
  EXPECT_DOUBLE_EQ(s.requests[0].bid, fixed);
}

TEST(AssignValuations, EachBaseModeProducesPositiveBids) {
  for (const auto base : {ValuationBase::kFullOfferCost, ValuationBase::kDurationProrated,
                          ValuationBase::kFractionProrated}) {
    WorkloadConfig wc;
    wc.num_requests = 30;
    wc.num_offers = 15;
    wc.valuation.base = base;
    Rng rng(9);
    const auto s = make_workload(wc, auction::AuctionConfig{}, rng);
    for (const auto& r : s.requests) EXPECT_GT(r.bid, 0.0);
  }
}

TEST(AssignValuations, FullCostDominatesProratedForSameSeed) {
  // Same RNG stream: the full-offer-cost base can only scale bids up
  // relative to duration-prorated (d_r ≤ window).
  WorkloadConfig wc;
  wc.num_requests = 20;
  wc.num_offers = 10;
  wc.valuation.base = ValuationBase::kDurationProrated;
  Rng a(10);
  const auto prorated = make_workload(wc, auction::AuctionConfig{}, a);
  wc.valuation.base = ValuationBase::kFullOfferCost;
  Rng b(10);
  const auto full = make_workload(wc, auction::AuctionConfig{}, b);
  for (std::size_t i = 0; i < full.requests.size(); ++i) {
    EXPECT_GE(full.requests[i].bid, prorated.requests[i].bid - 1e-12);
  }
}

}  // namespace
}  // namespace decloud::trace

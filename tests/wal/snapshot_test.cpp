// Snapshot file atomicity: temp-file + rename discipline, latest-intact
// selection, and corrupt-snapshot rejection (DESIGN.md §3k).
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "journal/wire.hpp"
#include "wal/snapshot.hpp"

namespace decloud::wal {
namespace {

namespace wire = journal::wire;
namespace fs = std::filesystem;

constexpr std::uint64_t kFp = 0xFEEDFACEULL;

std::string fresh_dir(const char* name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

std::vector<std::uint8_t> payload(std::initializer_list<std::uint8_t> bytes) { return bytes; }

void write_file(const std::string& path, const std::string& contents) {
  std::ofstream f(path, std::ios::binary);
  f << contents;
}

TEST(Snapshot, RoundTripAndLatestSelection) {
  const std::string dir = fresh_dir("snap_roundtrip");
  EXPECT_FALSE(find_latest_snapshot(dir).has_value());

  write_snapshot(dir, 2, payload({1, 2}), kFp, nullptr);
  write_snapshot(dir, 10, payload({3, 4, 5}), kFp, nullptr);
  write_snapshot(dir, 4, payload({6}), kFp, nullptr);

  const std::optional<std::string> latest = find_latest_snapshot(dir);
  ASSERT_TRUE(latest.has_value());
  EXPECT_NE(latest->find("snapshot-10.dcs"), std::string::npos);
  const SnapshotFile snap = read_snapshot(*latest, kFp);
  EXPECT_EQ(snap.epochs, 10u);
  EXPECT_EQ(snap.payload, payload({3, 4, 5}));
}

TEST(Snapshot, StrayTempAndForeignFilesIgnored) {
  const std::string dir = fresh_dir("snap_stray");
  write_snapshot(dir, 3, payload({7}), kFp, nullptr);
  // A crash mid-snapshot leaves a .tmp behind; later files must never
  // shadow the intact snapshot, whatever their names claim.
  write_file(dir + "/snapshot-99.dcs.tmp", "torn");
  write_file(dir + "/snapshot-.dcs", "not a number");
  write_file(dir + "/snapshot-12x.dcs", "trailing junk");
  write_file(dir + "/other.dcs", "foreign");

  const std::optional<std::string> latest = find_latest_snapshot(dir);
  ASSERT_TRUE(latest.has_value());
  EXPECT_NE(latest->find("snapshot-3.dcs"), std::string::npos);
  EXPECT_EQ(read_snapshot(*latest, kFp).epochs, 3u);
}

TEST(Snapshot, CorruptSnapshotThrows) {
  const std::string dir = fresh_dir("snap_corrupt");
  write_snapshot(dir, 5, payload({1, 2, 3, 4}), kFp, nullptr);
  const std::string path = dir + "/snapshot-5.dcs";

  // Wrong fingerprint.
  EXPECT_THROW(read_snapshot(path, kFp + 1), wire::decode_error);

  // Every strict prefix is a truncation.
  std::ifstream in(path, std::ios::binary);
  const std::string bytes((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    write_file(path, bytes.substr(0, len));
    EXPECT_THROW(read_snapshot(path, kFp), wire::decode_error) << "prefix " << len;
  }

  // A payload bit flip fails the CRC.
  std::string flipped = bytes;
  flipped[flipped.size() - 6] = static_cast<char>(flipped[flipped.size() - 6] ^ 0x01);
  write_file(path, flipped);
  EXPECT_THROW(read_snapshot(path, kFp), wire::decode_error);

  // Trailing junk after the CRC is rejected too.
  write_file(path, bytes + "x");
  EXPECT_THROW(read_snapshot(path, kFp), wire::decode_error);
}

}  // namespace
}  // namespace decloud::wal

// Recovery edge cases at the durable-driver level (DESIGN.md §3k):
// empty-WAL recovery, snapshot-only recovery (empty tail), recovery from
// an abandoned partial run (the in-process stand-in for a kill), and
// double-recover idempotence.  recover_check covers the real
// kill-a-process matrix; these tests keep the edge cases in the fast
// unit tier.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>

#include "engine/driver.hpp"
#include "engine/engine.hpp"
#include "engine/epoch_scheduler.hpp"
#include "journal/journal.hpp"
#include "journal/wire.hpp"
#include "ledger/market.hpp"
#include "stream/stream_driver.hpp"
#include "stream/streaming_market.hpp"
#include "wal/durable/durable.hpp"
#include "wal/wal.hpp"

namespace decloud::wal {
namespace {

namespace fs = std::filesystem;

constexpr std::uint64_t kSeed = 7;
constexpr std::uint64_t kFp = 0xC0FFEEULL;

std::string fresh_dir(const char* name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  return dir.string();
}

engine::EngineConfig engine_config() {
  engine::EngineConfig config;
  config.router.num_shards = 2;
  config.router.x0 = 0.0;
  config.router.x1 = 100.0;
  config.router.y0 = 0.0;
  config.router.y1 = 100.0;
  config.market.consensus.difficulty_bits = 8;
  config.market.num_verifiers = 1;
  config.market.consensus.auction.threads = 1;
  // The durable drivers require the cross-round index cache off.
  config.market.reuse_candidate_index = false;
  return config;
}

engine::TraceDriverConfig driver_config() {
  engine::TraceDriverConfig driver;
  driver.workload.num_requests = 40;
  driver.workload.num_offers = 20;
  driver.located_fraction = 0.8;
  driver.bids_per_epoch = 20;
  driver.seed = kSeed;
  driver.drain_epochs = 8;
  return driver;
}

void expect_outcomes_identical(const engine::DriveOutcome& a, const engine::DriveOutcome& b) {
  EXPECT_EQ(a.bids_generated, b.bids_generated);
  EXPECT_EQ(a.bids_admitted, b.bids_admitted);
  EXPECT_EQ(a.bids_rejected, b.bids_rejected);
  // summary_json is the canonical byte-exact serialization (exact doubles
  // included) — the same string the determinism suites compare.
  EXPECT_EQ(a.report.summary_json(), b.report.summary_json());
}

engine::DriveOutcome run_durable(const DurableOptions& opts) {
  engine::MarketEngine engine(engine_config());
  engine::EpochScheduler scheduler(engine, 1);
  return drive_trace_durable(engine, scheduler, driver_config(), opts);
}

engine::DriveOutcome run_plain() {
  engine::MarketEngine engine(engine_config());
  engine::EpochScheduler scheduler(engine, 1);
  return engine::drive_trace(engine, scheduler, driver_config());
}

TEST(Recovery, EmptyWalRecoversToFreshRun) {
  const std::string dir = fresh_dir("rec_empty");
  // A process that died right after creating the WAL left headers only.
  { const auto writer = WalWriter::create({dir, 2, kFp, false}); }
  const engine::DriveOutcome recovered =
      run_durable({dir, /*snapshot_every=*/0, /*recover=*/true, /*sync=*/false, kFp});
  expect_outcomes_identical(recovered, run_plain());
}

TEST(Recovery, CompletedRunRecoversIdempotently) {
  const std::string dir = fresh_dir("rec_complete");
  const DurableOptions fresh{dir, /*snapshot_every=*/2, /*recover=*/false, /*sync=*/false, kFp};
  const engine::DriveOutcome first = run_durable(fresh);
  expect_outcomes_identical(first, run_plain());

  DurableOptions recover = fresh;
  recover.recover = true;
  // Twice: recovery of a complete WAL must not perturb it for the next.
  expect_outcomes_identical(run_durable(recover), first);
  expect_outcomes_identical(run_durable(recover), first);
}

TEST(Recovery, SnapshotOnlyEmptyTail) {
  // snapshot_every=1 makes the LAST tick's snapshot cover the entire
  // input sequence: recovery restores it and replays nothing.
  const std::string dir = fresh_dir("rec_snaponly");
  engine::TraceDriverConfig config = driver_config();
  config.drain_epochs = 0;  // no drain ticks after the last snapshot
  engine::DriveOutcome first;
  {
    engine::MarketEngine engine(engine_config());
    engine::EpochScheduler scheduler(engine, 1);
    first = drive_trace_durable(engine, scheduler, config,
                                {dir, /*snapshot_every=*/1, false, false, kFp});
  }
  const std::optional<std::string> latest = find_latest_snapshot(dir);
  ASSERT_TRUE(latest.has_value());
  const SnapshotFile snap = read_snapshot(*latest, kFp);
  EXPECT_EQ(load_wal(dir, 2, kFp).next_input_seq,
            [&] {  // watermark == next_input_seq: nothing left to replay
              ByteReader r(snap.payload);
              (void)journal::wire::read_u8(r);
              return journal::wire::read_u64(r);
            }());
  engine::MarketEngine engine(engine_config());
  engine::EpochScheduler scheduler(engine, 1);
  const engine::DriveOutcome recovered =
      drive_trace_durable(engine, scheduler, config, {dir, 1, true, false, kFp});
  expect_outcomes_identical(recovered, first);
}

TEST(Recovery, AbandonedPartialRunRecovers) {
  // In-process kill stand-in: drive part of the workload with a WAL
  // attached, then abandon the engine (state dies with it, the WAL
  // survives) and recover into a FRESH engine.
  const std::string dir = fresh_dir("rec_partial");
  const engine::TraceDriverConfig config = driver_config();
  {
    engine::MarketEngine engine(engine_config());
    engine::EpochScheduler scheduler(engine, 1);
    const auto writer = WalWriter::create({dir, 2, kFp, false});
    engine.set_wal_writer(writer.get());
    scheduler.set_wal_writer(writer.get());
    const engine::TraceStream stream = engine::make_trace_stream(config, engine.config());
    const std::size_t n_req = stream.snapshot.requests.size();
    // One full batch + tick, then half a batch, then "die".
    for (std::size_t i = 0; i < 30 && i < stream.order.size(); ++i) {
      const std::size_t pick = stream.order[i];
      if (pick < n_req) {
        (void)engine.submit(stream.snapshot.requests[pick]);
      } else {
        (void)engine.submit(stream.snapshot.offers[pick - n_req]);
      }
      if (i == 19) scheduler.tick(config.start_time, journal::CloseReason::kBidCount, 20);
    }
    engine.set_wal_writer(nullptr);
    scheduler.set_wal_writer(nullptr);
  }
  const engine::DriveOutcome recovered =
      run_durable({dir, /*snapshot_every=*/0, /*recover=*/true, /*sync=*/false, kFp});
  expect_outcomes_identical(recovered, run_plain());
}

TEST(Recovery, StreamDurableMatchesPlainStream) {
  const std::string dir = fresh_dir("rec_stream");
  stream::StreamConfig stream_config;
  stream_config.engine = engine_config();
  stream_config.triggers.bids = 15;
  stream_config.threads = 1;
  stream_config.drain_epochs = 8;
  engine::TraceDriverConfig config = driver_config();
  config.drain_epochs = 8;

  stream::StreamDriveOutcome plain;
  {
    stream::StreamingMarket market(stream_config);
    plain = stream::drive_trace_stream(market, config);
  }
  stream::StreamDriveOutcome durable;
  {
    stream::StreamingMarket market(stream_config);
    durable = drive_trace_stream_durable(market, config,
                                         {dir, /*snapshot_every=*/1, false, false, kFp});
  }
  EXPECT_EQ(durable.micro_epochs, plain.micro_epochs);
  EXPECT_EQ(durable.drain_epochs, plain.drain_epochs);
  expect_outcomes_identical(durable.drive, plain.drive);

  // Recover the completed stream WAL into a fresh market: same outcome.
  stream::StreamingMarket market(stream_config);
  const stream::StreamDriveOutcome recovered =
      drive_trace_stream_durable(market, config, {dir, 1, true, false, kFp});
  EXPECT_EQ(recovered.micro_epochs, plain.micro_epochs);
  expect_outcomes_identical(recovered.drive, plain.drive);
}

TEST(Recovery, FingerprintMismatchRefused) {
  const std::string dir = fresh_dir("rec_fp");
  (void)run_durable({dir, 0, false, false, kFp});
  EXPECT_THROW(run_durable({dir, 0, true, false, kFp + 1}), journal::wire::decode_error);
}

}  // namespace
}  // namespace decloud::wal

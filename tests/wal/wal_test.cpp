// WAL segment framing: roundtrip, valid-prefix-wins torn tails, CRC
// rejection, input-sequence density, and re-attach truncation
// (DESIGN.md §3k).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "crypto/sha256.hpp"
#include "journal/wire.hpp"
#include "wal/wal.hpp"

namespace decloud::wal {
namespace {

namespace wire = journal::wire;
namespace fs = std::filesystem;

constexpr std::uint64_t kFp = 0xD15EA5EDULL;

std::string fresh_dir(const char* name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  return dir.string();
}

std::vector<std::uint8_t> payload(std::initializer_list<std::uint8_t> bytes) { return bytes; }

std::uint64_t file_size(const std::string& path) {
  return static_cast<std::uint64_t>(fs::file_size(path));
}

void truncate_file(const std::string& path, std::uint64_t size) {
  fs::resize_file(path, size);
}

void flip_byte(const std::string& path, std::uint64_t offset) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.is_open());
  f.seekg(static_cast<std::streamoff>(offset));
  char c = 0;
  f.read(&c, 1);
  c = static_cast<char>(c ^ 0x40);
  f.seekp(static_cast<std::streamoff>(offset));
  f.write(&c, 1);
}

TEST(Wal, WriterReaderRoundTrip) {
  const std::string dir = fresh_dir("wal_roundtrip");
  crypto::Digest digest{};
  digest[0] = 0xAB;
  {
    const auto writer = WalWriter::create({dir, 2, kFp, /*sync=*/false});
    EXPECT_EQ(writer->append_bid(1, false, payload({1, 2, 3})), 0u);
    EXPECT_EQ(writer->append_tick(600, 0, 10), 1u);
    EXPECT_EQ(writer->append_bid(0, true, payload({4})), 2u);
    EXPECT_EQ(writer->append_clock_advance(5), 3u);
    EXPECT_EQ(writer->append_flush(), 4u);
    writer->append_block(0, 1, digest);
    EXPECT_EQ(writer->next_input_seq(), 5u);
  }

  const WalContents contents = load_wal(dir, 2, kFp);
  ASSERT_EQ(contents.inputs.size(), 5u);
  EXPECT_EQ(contents.next_input_seq, 5u);
  EXPECT_EQ(contents.inputs[0].kind, RecordKind::kBid);
  EXPECT_EQ(contents.inputs[0].segment, 1u);
  EXPECT_FALSE(contents.inputs[0].is_offer);
  EXPECT_EQ(contents.inputs[0].payload, payload({1, 2, 3}));
  EXPECT_EQ(contents.inputs[1].kind, RecordKind::kTick);
  EXPECT_EQ(contents.inputs[1].now, 600);
  EXPECT_EQ(contents.inputs[1].submissions, 10u);
  EXPECT_EQ(contents.inputs[2].kind, RecordKind::kBid);
  EXPECT_TRUE(contents.inputs[2].is_offer);
  EXPECT_EQ(contents.inputs[3].kind, RecordKind::kClockAdvance);
  EXPECT_EQ(contents.inputs[3].ticks, 5u);
  EXPECT_EQ(contents.inputs[4].kind, RecordKind::kFlush);
  ASSERT_EQ(contents.blocks.size(), 1u);
  EXPECT_EQ(contents.blocks.at({0, 1}), digest);
}

TEST(Wal, MissingSegmentThrows) {
  const std::string dir = fresh_dir("wal_missing");
  { const auto writer = WalWriter::create({dir, 2, kFp, false}); }
  fs::remove(fs::path(dir) / segment_file_name(2));
  EXPECT_THROW(load_wal(dir, 2, kFp), wire::decode_error);
}

TEST(Wal, FingerprintMismatchThrows) {
  const std::string dir = fresh_dir("wal_fp");
  { const auto writer = WalWriter::create({dir, 1, kFp, false}); }
  EXPECT_THROW(load_wal(dir, 1, kFp + 1), wire::decode_error);
}

TEST(Wal, TornTailTruncatesToValidPrefix) {
  const std::string dir = fresh_dir("wal_torn");
  {
    const auto writer = WalWriter::create({dir, 1, kFp, false});
    (void)writer->append_bid(1, false, payload({1, 2, 3}));
    (void)writer->append_bid(1, false, payload({4, 5, 6}));
  }
  const std::string shard = (fs::path(dir) / segment_file_name(1)).string();
  const WalContents whole = load_wal(dir, 1, kFp);
  ASSERT_EQ(whole.inputs.size(), 2u);
  const std::uint64_t full = file_size(shard);

  // Cut anywhere inside the last frame: the first record survives, the
  // torn one is dropped, valid_bytes points at the cut boundary.
  for (const std::uint64_t cut : {full - 1, full - 5, whole.valid_bytes[1] + 1}) {
    truncate_file(shard, cut);
    const SegmentContents seg = read_segment(shard, 1, kFp);
    ASSERT_EQ(seg.records.size(), 1u) << "cut " << cut;
    EXPECT_EQ(seg.records[0].payload, payload({1, 2, 3}));
    EXPECT_LT(seg.valid_bytes, cut + 1);
  }
}

TEST(Wal, CrcFlipDropsTail) {
  const std::string dir = fresh_dir("wal_crc");
  std::uint64_t first_end = 0;
  {
    const auto writer = WalWriter::create({dir, 1, kFp, false});
    (void)writer->append_bid(1, false, payload({1, 2, 3}));
    first_end = file_size((fs::path(dir) / segment_file_name(1)).string());
    (void)writer->append_bid(1, false, payload({4, 5, 6}));
  }
  const std::string shard = (fs::path(dir) / segment_file_name(1)).string();
  // Flip a byte inside the SECOND record's payload: its CRC fails, and
  // valid-prefix-wins keeps only the first record.
  flip_byte(shard, first_end + 6);
  const SegmentContents seg = read_segment(shard, 1, kFp);
  ASSERT_EQ(seg.records.size(), 1u);
  EXPECT_EQ(seg.valid_bytes, first_end);
}

TEST(Wal, HeaderCorruptionThrows) {
  const std::string dir = fresh_dir("wal_hdr");
  { const auto writer = WalWriter::create({dir, 1, kFp, false}); }
  const std::string control = (fs::path(dir) / segment_file_name(0)).string();
  // Frame 0 layout: u32 len | "DCW1" ... — flip the magic's first byte.
  flip_byte(control, 4);
  EXPECT_THROW(read_segment(control, 0, kFp), wire::decode_error);
  // A truncated header (no intact frame at all) is also fatal: a WAL
  // whose header cannot be read offers no valid prefix to recover.
  truncate_file(control, 3);
  EXPECT_THROW(read_segment(control, 0, kFp), wire::decode_error);
}

TEST(Wal, InputSequenceGapThrows) {
  const std::string dir = fresh_dir("wal_gap");
  const std::string shard = (fs::path(dir) / segment_file_name(1)).string();
  std::uint64_t header_end = 0;
  {
    const auto writer = WalWriter::create({dir, 1, kFp, false});
    header_end = file_size(shard);  // header frame only, no records yet
    (void)writer->append_bid(0, false, payload({1}));  // seq 0 -> control
    (void)writer->append_bid(1, false, payload({2}));  // seq 1 -> shard
    (void)writer->append_bid(0, false, payload({3}));  // seq 2 -> control
  }
  // Dropping the shard record leaves {0, 2}: a gap, not a torn tail —
  // segment-local truncation cannot be told apart from a lost input, so
  // the merged sequence check must refuse it.
  truncate_file(shard, header_end);
  EXPECT_THROW(load_wal(dir, 1, kFp), wire::decode_error);
}

TEST(Wal, DuplicateBlockDigestsMustAgree) {
  const std::string dir = fresh_dir("wal_blocks");
  crypto::Digest a{};
  a[0] = 1;
  crypto::Digest b{};
  b[0] = 2;
  {
    const auto writer = WalWriter::create({dir, 1, kFp, false});
    writer->append_block(0, 1, a);
    writer->append_block(0, 1, a);  // equal duplicate: a re-drained round
  }
  EXPECT_EQ(load_wal(dir, 1, kFp).blocks.size(), 1u);
  {
    const auto writer =
        WalWriter::attach({dir, 1, kFp, false}, load_wal(dir, 1, kFp).valid_bytes, 0);
    writer->append_block(0, 1, b);  // disagreeing digest: corruption
  }
  EXPECT_THROW(load_wal(dir, 1, kFp), wire::decode_error);
}

TEST(Wal, AttachTruncatesTornTailAndContinuesSeq) {
  const std::string dir = fresh_dir("wal_attach");
  {
    const auto writer = WalWriter::create({dir, 1, kFp, false});
    (void)writer->append_bid(1, false, payload({1}));
    (void)writer->append_bid(1, false, payload({2}));
  }
  const std::string shard = (fs::path(dir) / segment_file_name(1)).string();
  truncate_file(shard, file_size(shard) - 2);  // tear the second record
  const WalContents contents = load_wal(dir, 1, kFp);
  ASSERT_EQ(contents.inputs.size(), 1u);
  {
    const auto writer =
        WalWriter::attach({dir, 1, kFp, false}, contents.valid_bytes, contents.next_input_seq);
    EXPECT_EQ(writer->next_input_seq(), 1u);
    EXPECT_EQ(writer->append_bid(1, false, payload({9})), 1u);
  }
  const WalContents after = load_wal(dir, 1, kFp);
  ASSERT_EQ(after.inputs.size(), 2u);
  EXPECT_EQ(after.inputs[1].payload, payload({9}));
}

}  // namespace
}  // namespace decloud::wal

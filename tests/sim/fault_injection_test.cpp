// Failure injection: the protocol under a lossy overlay.  Message loss
// must degrade the round gracefully (bids missing, consensus stalling) —
// never corrupt state or violate invariants on whatever does land.
#include <gtest/gtest.h>

#include "auction/verify.hpp"
#include "common/ensure.hpp"
#include "ledger/protocol.hpp"
#include "sim/simulation.hpp"
#include "trace/workload.hpp"

namespace decloud::sim {
namespace {

SimulationConfig lossy_config(double loss) {
  SimulationConfig sc;
  sc.num_miners = 3;
  sc.num_participants = 4;
  sc.consensus.difficulty_bits = 8;
  sc.latency.loss = loss;
  return sc;
}

void inject(Simulation& sim, std::size_t requests, std::size_t offers, std::uint64_t seed) {
  trace::WorkloadConfig wc;
  wc.num_requests = requests;
  wc.num_offers = offers;
  Rng rng(seed);
  const auto snap = trace::make_workload(wc, auction::AuctionConfig{}, rng);
  for (std::size_t i = 0; i < snap.requests.size(); ++i) {
    sim.participant(i % sim.num_participants()).enqueue_request(snap.requests[i]);
  }
  for (std::size_t i = 0; i < snap.offers.size(); ++i) {
    sim.participant(i % sim.num_participants()).enqueue_offer(snap.offers[i]);
  }
}

TEST(NetworkLoss, DropsAreCountedAndBounded) {
  Rng rng(1);
  EventQueue queue;
  Network net(4, {.base_ms = 5, .jitter_ms = 5, .loss = 0.5}, queue, rng);
  int delivered = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    net.attach(NodeId(i), [&](NodeId, const Message&) { ++delivered; });
  }
  for (int i = 0; i < 100; ++i) {
    net.send(NodeId(0), NodeId(1), VoteMsg{.height = 0, .accept = true, .voter = NodeId(0)});
  }
  queue.run();
  EXPECT_EQ(net.messages_sent(), 100u);
  EXPECT_EQ(net.messages_dropped() + static_cast<std::size_t>(delivered), 100u);
  EXPECT_GT(net.messages_dropped(), 20u);  // ~50 expected
  EXPECT_LT(net.messages_dropped(), 80u);
}

TEST(NetworkLoss, InvalidLossRejected) {
  Rng rng(1);
  EventQueue queue;
  EXPECT_THROW(Network(2, {.loss = 1.0}, queue, rng), precondition_error);
  EXPECT_THROW(Network(2, {.loss = -0.1}, queue, rng), precondition_error);
}

TEST(FaultInjection, MildLossRoundStillSoundOnWhateverLands) {
  // 10 % loss: some bids/reveals vanish.  If a block is accepted at all,
  // its on-chain allocation must still satisfy every invariant over the
  // bids that made it in.
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    SimulationConfig sc = lossy_config(0.10);
    sc.seed = seed;
    Simulation sim(sc);
    inject(sim, 12, 6, seed);
    const RoundStats stats = sim.run_round(0);
    if (stats.accepted) {
      EXPECT_LE(stats.snapshot.requests.size(), 12u);
      const auto report =
          auction::verify_invariants(stats.snapshot, stats.result, sc.consensus.auction);
      EXPECT_TRUE(report.ok()) << (report.ok() ? "" : report.violations.front());
    }
    // Either way the simulation terminated and counted its losses.
    EXPECT_GT(sim.network().messages_sent(), 0u);
  }
}

TEST(FaultInjection, HeavyLossNeverForksTheChain) {
  // 40 % loss: consensus frequently fails (votes lost), but no two miners
  // may ever end up on different blocks at the same height.
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    SimulationConfig sc = lossy_config(0.40);
    sc.seed = seed * 7;
    Simulation sim(sc);
    inject(sim, 8, 4, seed);
    (void)sim.run_round(0);

    // Collect the chains; any two miners at equal height must agree.
    for (std::size_t a = 0; a < 3; ++a) {
      for (std::size_t b = a + 1; b < 3; ++b) {
        const auto& ca = sim.miner(a).chain();
        const auto& cb = sim.miner(b).chain();
        const std::uint64_t h = std::min(ca.height(), cb.height());
        for (std::uint64_t i = 0; i < h; ++i) {
          EXPECT_EQ(ca.blocks()[i].preamble.hash(), cb.blocks()[i].preamble.hash())
              << "fork between miners " << a << " and " << b << " at height " << i;
        }
      }
    }
  }
}

TEST(FaultInjection, LostRevealsExcludeOnlyTheirOwners) {
  // A participant whose key-reveal broadcast is lost sits the round out;
  // everyone else proceeds.  (Deterministic check through the in-process
  // protocol: withholding reveals == losing those messages.)
  ledger::ConsensusParams params{.difficulty_bits = 8};
  ledger::LedgerProtocol protocol(params);
  Rng rng(3);
  ledger::Participant lucky(rng);
  ledger::Participant unlucky(rng);

  trace::WorkloadConfig wc;
  wc.num_requests = 6;
  wc.num_offers = 4;
  const auto snap = trace::make_workload(wc, params.auction, rng);
  for (std::size_t i = 0; i < snap.requests.size(); ++i) {
    auto& owner = (i % 2 == 0) ? lucky : unlucky;
    protocol.mempool().submit(owner.submit_request(snap.requests[i], rng));
  }
  for (const auto& o : snap.offers) {
    protocol.mempool().submit(lucky.submit_offer(o, rng));
  }

  // Only `lucky` reveals (unlucky's reveal messages all "got lost").
  const auto outcome = protocol.run_round({&lucky}, {ledger::Miner(params)}, 0);
  ASSERT_TRUE(outcome.block_accepted);
  EXPECT_EQ(outcome.snapshot.requests.size(), 3u);   // only lucky's requests
  EXPECT_EQ(outcome.snapshot.offers.size(), 4u);
  EXPECT_EQ(unlucky.pending_bids(), 3u);             // will resubmit later
}

}  // namespace
}  // namespace decloud::sim

#include "sim/network.hpp"

#include <gtest/gtest.h>

#include "common/ensure.hpp"

namespace decloud::sim {
namespace {

/// The smallest message to push through the overlay in tests.
Message probe() { return VoteMsg{.height = 1, .accept = true, .voter = NodeId(0)}; }

struct Fixture {
  Rng rng{1};
  EventQueue queue;
  Network net{4, LatencyConfig{.base_ms = 10, .jitter_ms = 20}, queue, rng};
};

TEST(Network, LatenciesWithinConfiguredBounds) {
  Fixture f;
  for (std::size_t a = 0; a < 4; ++a) {
    for (std::size_t b = 0; b < 4; ++b) {
      if (a == b) continue;
      const SimTime l = f.net.link_latency(NodeId(a), NodeId(b));
      EXPECT_GE(l, 10);
      EXPECT_LT(l, 30);
    }
  }
}

TEST(Network, SendDeliversAfterLinkLatency) {
  Fixture f;
  f.net.attach(NodeId(0), [](NodeId, const Message&) {});
  SimTime delivered = -1;
  NodeId from_seen;
  f.net.attach(NodeId(1), [&](NodeId from, const Message&) {
    delivered = f.queue.now();
    from_seen = from;
  });
  f.net.send(NodeId(0), NodeId(1), probe());
  f.queue.run();
  EXPECT_EQ(delivered, f.net.link_latency(NodeId(0), NodeId(1)));
  EXPECT_EQ(from_seen, NodeId(0));
}

TEST(Network, BroadcastReachesEveryoneButSender) {
  Fixture f;
  std::vector<int> received(4, 0);
  for (std::size_t i = 0; i < 4; ++i) {
    f.net.attach(NodeId(i), [&received, i](NodeId, const Message&) { received[i]++; });
  }
  f.net.broadcast(NodeId(2), probe());
  f.queue.run();
  EXPECT_EQ(received, (std::vector<int>{1, 1, 0, 1}));
  EXPECT_EQ(f.net.messages_sent(), 3u);
}

TEST(Network, MessagePayloadSurvivesTransit) {
  Fixture f;
  f.net.attach(NodeId(0), [](NodeId, const Message&) {});
  bool checked = false;
  f.net.attach(NodeId(1), [&](NodeId, const Message& m) {
    const auto* vote = std::get_if<VoteMsg>(&m);
    ASSERT_NE(vote, nullptr);
    EXPECT_EQ(vote->height, 42u);
    EXPECT_FALSE(vote->accept);
    checked = true;
  });
  f.net.send(NodeId(0), NodeId(1), VoteMsg{.height = 42, .accept = false, .voter = NodeId(0)});
  f.queue.run();
  EXPECT_TRUE(checked);
}

TEST(Network, SendToUnattachedNodeRejected) {
  Fixture f;
  f.net.attach(NodeId(0), [](NodeId, const Message&) {});
  EXPECT_THROW(f.net.send(NodeId(0), NodeId(3), probe()), precondition_error);
}

TEST(Network, OutOfRangeNodesRejected) {
  Fixture f;
  EXPECT_THROW(f.net.attach(NodeId(9), [](NodeId, const Message&) {}), precondition_error);
  EXPECT_THROW(f.net.link_latency(NodeId(0), NodeId(9)), precondition_error);
}

TEST(Network, DeterministicLatenciesPerSeed) {
  Rng r1(7);
  Rng r2(7);
  EventQueue q1;
  EventQueue q2;
  Network n1(5, {}, q1, r1);
  Network n2(5, {}, q2, r2);
  for (std::size_t a = 0; a < 5; ++a) {
    for (std::size_t b = 0; b < 5; ++b) {
      EXPECT_EQ(n1.link_latency(NodeId(a), NodeId(b)), n2.link_latency(NodeId(a), NodeId(b)));
    }
  }
}

}  // namespace
}  // namespace decloud::sim

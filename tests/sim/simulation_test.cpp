#include "sim/simulation.hpp"

#include <gtest/gtest.h>

#include "auction/verify.hpp"
#include "trace/workload.hpp"

namespace decloud::sim {
namespace {

SimulationConfig small_config() {
  SimulationConfig sc;
  sc.num_miners = 3;
  sc.num_participants = 4;
  sc.consensus.difficulty_bits = 8;
  return sc;
}

void inject_workload(Simulation& sim, std::size_t requests, std::size_t offers,
                     std::uint64_t seed) {
  trace::WorkloadConfig wc;
  wc.num_requests = requests;
  wc.num_offers = offers;
  Rng rng(seed);
  const auto snap = trace::make_workload(wc, auction::AuctionConfig{}, rng);
  for (std::size_t i = 0; i < snap.requests.size(); ++i) {
    sim.participant(i % sim.num_participants()).enqueue_request(snap.requests[i]);
  }
  for (std::size_t i = 0; i < snap.offers.size(); ++i) {
    sim.participant(i % sim.num_participants()).enqueue_offer(snap.offers[i]);
  }
}

TEST(Simulation, FullRoundReachesConsensus) {
  Simulation sim(small_config());
  inject_workload(sim, 12, 6, 1);
  const RoundStats stats = sim.run_round(0);
  EXPECT_TRUE(stats.accepted);
  EXPECT_EQ(stats.accept_votes, 3u);
  EXPECT_EQ(stats.reject_votes, 0u);
  EXPECT_EQ(stats.snapshot.requests.size(), 12u);
  EXPECT_EQ(stats.snapshot.offers.size(), 6u);
  EXPECT_GT(stats.round_ms, 0);
  EXPECT_GT(stats.messages, 0u);
}

TEST(Simulation, OnChainAllocationSatisfiesInvariants) {
  SimulationConfig sc = small_config();
  Simulation sim(sc);
  inject_workload(sim, 20, 10, 2);
  const RoundStats stats = sim.run_round(0);
  ASSERT_TRUE(stats.accepted);
  EXPECT_TRUE(
      auction::verify_invariants(stats.snapshot, stats.result, sc.consensus.auction).ok());
}

TEST(Simulation, AllMinersConvergeOnSameChain) {
  Simulation sim(small_config());
  inject_workload(sim, 10, 5, 3);
  ASSERT_TRUE(sim.run_round(0).accepted);
  const auto tip = sim.miner(0).chain().tip_hash();
  for (std::size_t m = 1; m < 3; ++m) {
    EXPECT_EQ(sim.miner(m).chain().height(), 1u);
    EXPECT_EQ(sim.miner(m).chain().tip_hash(), tip);
  }
}

TEST(Simulation, MultipleRoundsWithRotatingProducers) {
  Simulation sim(small_config());
  for (std::size_t round = 0; round < 3; ++round) {
    inject_workload(sim, 8, 4, 10 + round);
    const RoundStats stats = sim.run_round(round % 3);
    EXPECT_TRUE(stats.accepted) << "round " << round;
  }
  EXPECT_EQ(sim.miner(0).chain().height(), 3u);
}

TEST(Simulation, EmptyRoundProducesEmptyBlock) {
  Simulation sim(small_config());
  const RoundStats stats = sim.run_round(0);
  EXPECT_TRUE(stats.accepted);
  EXPECT_TRUE(stats.result.matches.empty());
  EXPECT_TRUE(stats.snapshot.requests.empty());
}

TEST(Simulation, RoundTimeCoversMiningAndReveal) {
  SimulationConfig sc = small_config();
  sc.timing.reveal_wait_ms = 500;
  Simulation sim(sc);
  inject_workload(sim, 6, 3, 4);
  const RoundStats stats = sim.run_round(0, /*collect_ms=*/200);
  ASSERT_TRUE(stats.accepted);
  // Collection window + reveal wait are hard lower bounds.
  EXPECT_GT(stats.round_ms, 700);
}

TEST(Simulation, ByzantineBodyIsRejectedByVerifiers) {
  // A forged body (tampered allocation bytes) injected by the producer
  // node id must be voted down and no chain advances.
  SimulationConfig sc = small_config();
  Simulation sim(sc);
  inject_workload(sim, 6, 3, 5);

  // Run the honest protocol up to the preamble: we replicate produce_block
  // by hand so we can forge the body afterwards.
  for (std::size_t i = 0; i < sim.num_participants(); ++i) {
    sim.participant(i).submit_queued(sim.rng());
  }
  sim.queue().run();  // deliver all sealed bids

  ledger::Miner producer(sc.consensus);
  // Assemble a preamble over everything miner 0 would have pooled; mine it.
  // (We cannot reach into MinerNode's mempool, so mine over an empty set
  // and forge the body — verifiers must still reject the bad bytes.)
  auto preamble = producer.mine_preamble({}, sim.miner(0).chain().tip_hash(), 0, 0);
  ASSERT_TRUE(preamble.has_value());
  ledger::BlockBody body = producer.compute_body(*preamble, {});
  body.allocation.push_back(0xde);  // forged trailing bytes

  sim.network().broadcast(NodeId(0), PreambleMsg{*preamble});
  sim.queue().run();
  sim.network().broadcast(NodeId(0), BodyMsg{0, body});
  sim.queue().run();

  for (std::size_t m = 1; m < 3; ++m) {
    EXPECT_EQ(sim.miner(m).chain().height(), 0u) << "miner " << m << " accepted a forged body";
  }
}

}  // namespace
}  // namespace decloud::sim

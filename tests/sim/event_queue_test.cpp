#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace decloud::sim {
namespace {

TEST(EventQueue, RunsEventsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(30, [&] { order.push_back(3); });
  q.schedule_at(10, [&] { order.push_back(1); });
  q.schedule_at(20, [&] { order.push_back(2); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 30);
}

TEST(EventQueue, FifoWithinSameTimestamp) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.schedule_at(7, [&order, i] { order.push_back(i); });
  }
  q.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, HandlersCanScheduleMoreEvents) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(1, [&] {
    ++fired;
    q.schedule_in(5, [&] { ++fired; });
  });
  q.run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(q.now(), 6);
}

TEST(EventQueue, PastEventsClampToNow) {
  EventQueue q;
  q.schedule_at(100, [] {});
  q.run();
  SimTime when = -1;
  q.schedule_at(5, [&] { when = q.now(); });  // 5 < now=100: clamped
  q.run();
  EXPECT_EQ(when, 100);
}

TEST(EventQueue, RunUntilStopsAtBoundary) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(10, [&] { ++fired; });
  q.schedule_at(20, [&] { ++fired; });
  q.schedule_at(30, [&] { ++fired; });
  EXPECT_EQ(q.run_until(20), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(q.now(), 20);
  EXPECT_EQ(q.pending(), 1u);
  q.run();
  EXPECT_EQ(fired, 3);
}

TEST(EventQueue, MaxEventsBoundsExecution) {
  EventQueue q;
  int fired = 0;
  for (int i = 0; i < 10; ++i) q.schedule_at(i, [&] { ++fired; });
  EXPECT_EQ(q.run(4), 4u);
  EXPECT_EQ(fired, 4);
  EXPECT_EQ(q.pending(), 6u);
}

TEST(EventQueue, EmptyStates) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.run(), 0u);
  EXPECT_EQ(q.now(), 0);
}

}  // namespace
}  // namespace decloud::sim

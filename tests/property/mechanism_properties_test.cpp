// Property sweeps over random markets: the economic invariants the paper
// proves (IR, strong BB, feasibility, determinism) must hold on every
// instance, not only on hand-picked ones.
#include <gtest/gtest.h>

#include "auction/mechanism.hpp"
#include "auction/verify.hpp"
#include "market_fixtures.hpp"

namespace decloud::auction {
namespace {

using property::MarketParams;
using property::random_market;

struct SweepCase {
  std::uint64_t seed;
  std::size_t requests;
  std::size_t offers;
  double flexibility;
};

class MechanismSweep : public ::testing::TestWithParam<SweepCase> {
 protected:
  MarketSnapshot market() const {
    Rng rng(GetParam().seed);
    MarketParams p;
    p.num_requests = GetParam().requests;
    p.num_offers = GetParam().offers;
    p.num_clients = std::max<std::size_t>(2, GetParam().requests / 2);
    p.num_providers = std::max<std::size_t>(2, GetParam().offers / 2);
    return random_market(rng, p);
  }

  AuctionConfig config() const {
    AuctionConfig cfg;
    cfg.flexibility = GetParam().flexibility;
    return cfg;
  }
};

TEST_P(MechanismSweep, AllInvariantsHold) {
  const MarketSnapshot s = market();
  const RoundResult r = DeCloudAuction(config()).run(s, GetParam().seed ^ 0xabcdef);
  const auto report = verify_invariants(s, r, config());
  EXPECT_TRUE(report.ok()) << (report.ok() ? "" : report.violations.front());
}

TEST_P(MechanismSweep, ReplayIsExact) {
  const MarketSnapshot s = market();
  const std::uint64_t seed = GetParam().seed * 31;
  const RoundResult r = DeCloudAuction(config()).run(s, seed);
  EXPECT_TRUE(verify_replay(s, r, config(), seed).ok());
}

TEST_P(MechanismSweep, TruthfulStaysNearOrBelowBenchmarkWelfare) {
  // The benchmark finalizes the greedy tentative allocation.  The truthful
  // pipeline usually loses welfare to trade reduction, but its verifiable
  // lottery re-packs clusters and can occasionally fit a couple more
  // trades than greedy did — hence the small upward tolerance.
  const MarketSnapshot s = market();
  AuctionConfig bench = config();
  bench.truthful = false;
  const RoundResult rt = DeCloudAuction(config()).run(s, 5);
  const RoundResult rb = DeCloudAuction(bench).run(s, 5);
  EXPECT_LE(rt.welfare, rb.welfare * 1.15 + 1e-9);
}

TEST_P(MechanismSweep, WelfareIsNonNegative) {
  // Constraint (9) + the marginal condition keep every accepted trade
  // individually welfare-positive.
  const MarketSnapshot s = market();
  const RoundResult r = DeCloudAuction(config()).run(s, 77);
  EXPECT_GE(r.welfare, -1e-9);
  for (const Match& m : r.matches) {
    EXPECT_GE(match_welfare(s.requests[m.request], s.offers[m.offer]), -1e-9);
  }
}

TEST_P(MechanismSweep, PaymentsBelowBidsRevenuesCoverNothingNegative) {
  const MarketSnapshot s = market();
  const RoundResult r = DeCloudAuction(config()).run(s, 13);
  for (const Match& m : r.matches) {
    EXPECT_LE(m.payment, s.requests[m.request].bid + 1e-9);  // client IR
    EXPECT_GE(m.payment, -1e-12);
  }
  for (const Money v : r.revenue_by_offer) EXPECT_GE(v, -1e-12);
}

TEST_P(MechanismSweep, ReducedTradesBoundedByTentative) {
  const MarketSnapshot s = market();
  const RoundResult r = DeCloudAuction(config()).run(s, 29);
  EXPECT_LE(r.reduced_trades, r.tentative_trades);
  EXPECT_LE(r.matches.size(), s.requests.size());
}

INSTANTIATE_TEST_SUITE_P(
    RandomMarkets, MechanismSweep,
    ::testing::Values(SweepCase{1, 10, 4, 1.0}, SweepCase{2, 24, 10, 1.0},
                      SweepCase{3, 50, 20, 1.0}, SweepCase{4, 24, 10, 0.8},
                      SweepCase{5, 50, 20, 0.8}, SweepCase{6, 8, 16, 1.0},
                      SweepCase{7, 100, 30, 0.9}, SweepCase{8, 3, 3, 1.0},
                      SweepCase{9, 60, 6, 1.0}, SweepCase{10, 6, 30, 0.8}));

TEST(MechanismProperty, SeedOnlyAffectsRandomizedExclusions) {
  // Different evidence seeds may shuffle the imbalance randomization but
  // never violate invariants; welfare stays in a tight band.
  Rng rng(99);
  const MarketSnapshot s = random_market(rng);
  AuctionConfig cfg;
  const RoundResult base = DeCloudAuction(cfg).run(s, 1);
  for (std::uint64_t seed = 2; seed < 12; ++seed) {
    const RoundResult r = DeCloudAuction(cfg).run(s, seed);
    EXPECT_TRUE(verify_invariants(s, r, cfg).ok());
    EXPECT_EQ(r.tentative_trades, base.tentative_trades);  // pre-random stage is seed-free
  }
}

}  // namespace
}  // namespace decloud::auction

// Random-market fixtures shared by the property suites.
#pragma once

#include <vector>

#include "auction/allocation.hpp"
#include "auction/bid.hpp"
#include "common/rng.hpp"

namespace decloud::auction::property {

struct MarketParams {
  std::size_t num_requests = 24;
  std::size_t num_offers = 10;
  std::size_t num_clients = 12;
  std::size_t num_providers = 5;
};

/// Draws a random but structurally valid market: heterogeneous sizes,
/// windows and prices; several bids per client/provider.
inline MarketSnapshot random_market(Rng& rng, const MarketParams& params = {}) {
  MarketSnapshot s;
  for (std::size_t i = 0; i < params.num_requests; ++i) {
    Request r;
    r.id = RequestId(i);
    r.client = ClientId(i % params.num_clients);
    r.submitted = static_cast<Time>(i);
    r.resources.set(ResourceSchema::kCpu, rng.uniform(0.25, 4.0));
    r.resources.set(ResourceSchema::kMemory, rng.uniform(0.5, 16.0));
    r.resources.set(ResourceSchema::kDisk, rng.uniform(1.0, 100.0));
    if (rng.bernoulli(0.3)) r.significance.set(ResourceSchema::kMemory, rng.uniform(0.3, 0.9));
    r.duration = rng.uniform_int(600, 7200);
    r.window_start = 0;
    r.window_end = r.duration + rng.uniform_int(0, 3600);
    r.bid = rng.uniform(0.05, 3.0);
    s.requests.push_back(std::move(r));
  }
  for (std::size_t i = 0; i < params.num_offers; ++i) {
    Offer o;
    o.id = OfferId(i);
    o.provider = ProviderId(i % params.num_providers);
    o.submitted = static_cast<Time>(i);
    const double scale = rng.uniform(1.0, 4.0);
    o.resources.set(ResourceSchema::kCpu, 4.0 * scale);
    o.resources.set(ResourceSchema::kMemory, 16.0 * scale);
    o.resources.set(ResourceSchema::kDisk, 100.0 * scale);
    o.window_start = 0;
    o.window_end = 86400;
    o.bid = rng.uniform(0.2, 2.0);
    s.offers.push_back(std::move(o));
  }
  return s;
}

/// Client utility at TRUE valuation: u_r = Σ_matched (v_r − p_r); zero when
/// unallocated (Section IV-D).
inline Money client_utility(const MarketSnapshot& truth, const RoundResult& result,
                            ClientId client) {
  Money u = 0.0;
  for (const Match& m : result.matches) {
    if (truth.requests[m.request].client == client) {
      u += truth.requests[m.request].bid - m.payment;
    }
  }
  return u;
}

/// Provider utility at TRUE cost: u_o = Σ_offers (π_o − φ_total·c_o), the
/// revenue minus the cost of the capacity fraction actually sold.
inline Money provider_utility(const MarketSnapshot& truth, const RoundResult& result,
                              ProviderId provider) {
  Money u = 0.0;
  for (const Match& m : result.matches) {
    const Offer& o = truth.offers[m.offer];
    if (o.provider == provider) {
      u += m.payment - resource_fraction(truth.requests[m.request], o) * o.bid;
    }
  }
  return u;
}

}  // namespace decloud::auction::property

// Robustness fuzzing of the wire codec: a byzantine peer can hand a miner
// arbitrary bytes; every decode must either succeed or throw
// precondition_error — never crash, hang, or allocate absurdly.
#include <gtest/gtest.h>

#include "common/ensure.hpp"
#include "common/rng.hpp"
#include "ledger/codec.hpp"
#include "market_fixtures.hpp"

namespace decloud::ledger {
namespace {

using auction::property::random_market;

/// Decodes arbitrary bytes, asserting containment of all failure modes.
template <typename Decode>
void expect_contained(Decode&& decode) {
  try {
    decode();
  } catch (const precondition_error&) {
    // expected containment path
  }
  // Anything else (segfault, bad_alloc from a hostile length field,
  // invariant_error) fails the test by escaping or crashing.
}

class CodecFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CodecFuzz, RandomBytesAreContained) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t len = static_cast<std::size_t>(rng.next_below(200));
    std::vector<std::uint8_t> bytes(len);
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.next_below(256));
    expect_contained([&] { (void)decode_request(bytes); });
    expect_contained([&] { (void)decode_offer(bytes); });
    expect_contained([&] { (void)decode_allocation(bytes, 16, 16); });
  }
}

TEST_P(CodecFuzz, SingleByteMutationsAreContained) {
  Rng rng(GetParam() * 17);
  const auto market = random_market(rng);
  const auto req_bytes = encode_request(market.requests[0]);
  const auto off_bytes = encode_offer(market.offers[0]);

  for (std::size_t pos = 0; pos < req_bytes.size(); ++pos) {
    auto mutated = req_bytes;
    mutated[pos] ^= static_cast<std::uint8_t>(1 + rng.next_below(255));
    expect_contained([&] {
      // A mutated payload may still decode (e.g. a flipped bid bit); if it
      // does, the result must satisfy the ResourceVector invariants the
      // decoder enforces (sortedness, no duplicates, no negatives happen
      // to be checked by the vector constructor).
      (void)decode_request(mutated);
    });
  }
  for (std::size_t pos = 0; pos < off_bytes.size(); ++pos) {
    auto mutated = off_bytes;
    mutated[pos] ^= 0x80;
    expect_contained([&] { (void)decode_offer(mutated); });
  }
}

TEST_P(CodecFuzz, TruncationSweepIsContained) {
  Rng rng(GetParam() * 29);
  const auto market = random_market(rng);
  const auto bytes = encode_request(market.requests[1]);
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    std::vector<std::uint8_t> truncated(bytes.begin(),
                                        bytes.begin() + static_cast<std::ptrdiff_t>(len));
    EXPECT_THROW((void)decode_request(truncated), precondition_error) << "len " << len;
  }
}

TEST_P(CodecFuzz, HostileLengthFieldsRejectedBeforeAllocation) {
  // A resource-vector count of 2^31 must be rejected by the plausibility
  // cap, not attempted.
  Rng rng(GetParam() * 41);
  const auto market = random_market(rng);
  auto bytes = encode_request(market.requests[0]);
  // Byte 0 is the tag; the first u32 resource count sits after
  // tag(1) + id(8) + client(8) + submitted(8) = offset 25.
  constexpr std::size_t kCountOffset = 25;
  ASSERT_GT(bytes.size(), kCountOffset + 4);
  bytes[kCountOffset + 0] = 0xff;
  bytes[kCountOffset + 1] = 0xff;
  bytes[kCountOffset + 2] = 0xff;
  bytes[kCountOffset + 3] = 0x7f;
  EXPECT_THROW((void)decode_request(bytes), precondition_error);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecFuzz, ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace decloud::ledger

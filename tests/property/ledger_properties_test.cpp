// Ledger-level properties: sealed-bid confidentiality, verification
// soundness, codec totality over random bids.
#include <gtest/gtest.h>

#include <algorithm>

#include "ledger/codec.hpp"
#include "ledger/miner.hpp"
#include "ledger/participant.hpp"
#include "market_fixtures.hpp"

namespace decloud::ledger {
namespace {

using auction::property::random_market;

class LedgerSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LedgerSweep, CodecRoundtripsRandomBids) {
  Rng rng(GetParam());
  const auto market = random_market(rng);
  for (const auto& r : market.requests) {
    const auto decoded = decode_request(encode_request(r));
    EXPECT_EQ(decoded.resources, r.resources);
    EXPECT_DOUBLE_EQ(decoded.bid, r.bid);
    EXPECT_EQ(decoded.duration, r.duration);
  }
  for (const auto& o : market.offers) {
    const auto decoded = decode_offer(encode_offer(o));
    EXPECT_EQ(decoded.resources, o.resources);
    EXPECT_DOUBLE_EQ(decoded.bid, o.bid);
  }
}

TEST_P(LedgerSweep, SealedBidsLeakNoPlaintextBytes) {
  // ChaCha20 output must not contain the plaintext as a substring — a
  // sanity check that the bids are truly sealed until key disclosure.
  Rng rng(GetParam() * 13);
  Participant wallet(rng);
  const auto market = random_market(rng);
  for (const auto& r : market.requests) {
    const auto plaintext = encode_request(r);
    const SealedBid bid = wallet.submit_request(r, rng);
    const auto it = std::search(bid.ciphertext.begin(), bid.ciphertext.end(),
                                plaintext.begin() + 1, plaintext.end());
    EXPECT_EQ(it, bid.ciphertext.end());
  }
}

TEST_P(LedgerSweep, FullRoundVerifiesAndTamperingIsCaught) {
  Rng rng(GetParam() * 29);
  const auto market = random_market(rng);

  ConsensusParams params{.difficulty_bits = 8};
  Miner producer(params);
  Participant wallet(rng);

  std::vector<SealedBid> bids;
  for (const auto& r : market.requests) bids.push_back(wallet.submit_request(r, rng));
  for (const auto& o : market.offers) bids.push_back(wallet.submit_offer(o, rng));

  auto preamble = producer.mine_preamble(std::move(bids), crypto::Digest{}, 0, 1);
  ASSERT_TRUE(preamble.has_value());
  const auto reveals = wallet.on_preamble(*preamble);
  ASSERT_EQ(reveals.size(), market.requests.size() + market.offers.size());

  const BlockBody body = producer.compute_body(*preamble, reveals);
  EXPECT_TRUE(producer.verify_body(*preamble, body));

  // Any single-byte tamper in the allocation is caught.
  BlockBody tampered = body;
  if (!tampered.allocation.empty()) {
    tampered.allocation[tampered.allocation.size() / 2] ^= 0x40;
    EXPECT_FALSE(producer.verify_body(*preamble, tampered));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LedgerSweep, ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace decloud::ledger

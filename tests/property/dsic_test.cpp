// Empirical incentive-compatibility check (Section IV-D of the paper).
//
// For random markets and random unilateral misreports, a participant's
// utility — evaluated at its TRUE valuation/cost — must not improve by
// lying.  The clustered heuristic pipeline randomizes imbalanced
// allocations from the block evidence, so utilities are compared as
// averages over several evidence seeds (the DSIC argument for the
// randomized step is in expectation).
#include <gtest/gtest.h>

#include <vector>

#include "auction/mechanism.hpp"
#include "market_fixtures.hpp"

namespace decloud::auction {
namespace {

using property::client_utility;
using property::provider_utility;
using property::random_market;

constexpr std::uint64_t kEvidenceSeeds[] = {11, 23, 37, 59, 71, 83, 97, 113};

Money mean_client_utility(const MarketSnapshot& truth, const MarketSnapshot& reported,
                          ClientId client, const AuctionConfig& cfg) {
  Money total = 0.0;
  for (const std::uint64_t seed : kEvidenceSeeds) {
    total += client_utility(truth, DeCloudAuction(cfg).run(reported, seed), client);
  }
  return total / static_cast<Money>(std::size(kEvidenceSeeds));
}

Money mean_provider_utility(const MarketSnapshot& truth, const MarketSnapshot& reported,
                            ProviderId provider, const AuctionConfig& cfg) {
  Money total = 0.0;
  for (const std::uint64_t seed : kEvidenceSeeds) {
    total += provider_utility(truth, DeCloudAuction(cfg).run(reported, seed), provider);
  }
  return total / static_cast<Money>(std::size(kEvidenceSeeds));
}

class DsicSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DsicSweep, ClientCannotGainByMisreportingValuation) {
  Rng rng(GetParam());
  const MarketSnapshot truth = random_market(rng);
  const AuctionConfig cfg;

  std::size_t gains = 0;
  std::size_t trials = 0;
  for (std::size_t target = 0; target < truth.requests.size(); target += 5) {
    const ClientId client = truth.requests[target].client;
    const Money truthful = mean_client_utility(truth, truth, client, cfg);
    for (const double factor : {0.5, 0.8, 1.25, 2.0}) {
      MarketSnapshot reported = truth;
      // The client misreports ALL its requests by the same factor.
      for (auto& r : reported.requests) {
        if (r.client == client) r.bid *= factor;
      }
      const Money lied = mean_client_utility(truth, reported, client, cfg);
      ++trials;
      if (lied > truthful + 1e-9 + 0.05 * std::abs(truthful)) ++gains;
    }
  }
  // See ProviderCannotGainByMisreportingCost for why the bound is a
  // frequency cap rather than zero.
  EXPECT_LE(gains, trials / 4) << gains << " profitable deviations in " << trials << " trials";
}

TEST_P(DsicSweep, ProviderCannotGainByMisreportingCost) {
  Rng rng(GetParam() * 7919);
  const MarketSnapshot truth = random_market(rng);
  const AuctionConfig cfg;

  std::size_t gains = 0;
  std::size_t trials = 0;
  for (std::size_t target = 0; target < truth.offers.size(); target += 3) {
    const ProviderId provider = truth.offers[target].provider;
    const Money truthful = mean_provider_utility(truth, truth, provider, cfg);
    for (const double factor : {0.5, 0.8, 1.25, 2.0}) {
      MarketSnapshot reported = truth;
      for (auto& o : reported.offers) {
        if (o.provider == provider) o.bid *= factor;
      }
      const Money lied = mean_provider_utility(truth, reported, provider, cfg);
      ++trials;
      if (lied > truthful + 1e-9 + 0.05 * std::abs(truthful)) ++gains;
    }
  }
  // The clustered, capacity-constrained pipeline is an *approximately*
  // DSIC heuristic: the idealized core (McAfee/SBBA) is exactly truthful
  // (see mcafee_test.cpp), and the lottery neutralizes the systematic
  // cost-shading channel, but residual edges around mini-auction
  // boundaries remain (the paper's own treatment of these cases is
  // informal).  We bound their frequency instead of asserting zero.
  EXPECT_LE(gains, trials / 4) << gains << " profitable deviations in " << trials << " trials";
}

TEST_P(DsicSweep, LateSubmissionNeverHelps) {
  // Tie-breaking prefers earlier submissions (Section IV-D): delaying a
  // request cannot increase the client's mean utility.
  Rng rng(GetParam() * 104729);
  const MarketSnapshot truth = random_market(rng);
  const AuctionConfig cfg;

  const ClientId client = truth.requests[0].client;
  const Money on_time = mean_client_utility(truth, truth, client, cfg);

  MarketSnapshot delayed = truth;
  for (auto& r : delayed.requests) {
    if (r.client == client) r.submitted += 1000000;
  }
  const Money late = mean_client_utility(truth, delayed, client, cfg);
  EXPECT_LE(late, on_time + 1e-9 + 0.05 * std::abs(on_time));
}

INSTANTIATE_TEST_SUITE_P(Markets, DsicSweep, ::testing::Values(101, 202, 303, 404, 505));

TEST(Dsic, OverbiddingAboveThresholdNeverPaysMoreThanValue) {
  // Direct check of IR under manipulation: even a wild overbid can at most
  // win at the clearing price, never pay more than the REPORTED bid — and
  // a truthful loser that overbids pays more than its true value, i.e.
  // negative utility, matching case 1 of the paper's argument.
  Rng rng(7);
  const MarketSnapshot truth = random_market(rng);
  MarketSnapshot reported = truth;
  reported.requests[0].bid = truth.requests[0].bid * 50.0;  // extreme overbid
  const RoundResult r = DeCloudAuction{}.run(reported, 3);
  for (const Match& m : r.matches) {
    EXPECT_LE(m.payment, reported.requests[m.request].bid + 1e-9);
  }
}

}  // namespace
}  // namespace decloud::auction

#include "crypto/chacha20.hpp"

#include <gtest/gtest.h>

#include <string>

#include "common/hex.hpp"

namespace decloud::crypto {
namespace {

SymmetricKey key_from_hex(const std::string& hex) {
  const auto bytes = from_hex(hex);
  SymmetricKey k{};
  std::copy(bytes.begin(), bytes.end(), k.begin());
  return k;
}

Nonce nonce_from_hex(const std::string& hex) {
  const auto bytes = from_hex(hex);
  Nonce n{};
  std::copy(bytes.begin(), bytes.end(), n.begin());
  return n;
}

// RFC 8439 §2.3.2: block function test vector.
TEST(ChaCha20, Rfc8439BlockVector) {
  const auto key =
      key_from_hex("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  const auto nonce = nonce_from_hex("000000090000004a00000000");
  const auto block = chacha20_block(key, nonce, 1);
  EXPECT_EQ(to_hex({block.data(), block.size()}),
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e"
            "d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e");
}

// RFC 8439 §2.4.2: encryption test vector.
TEST(ChaCha20, Rfc8439EncryptionVector) {
  const auto key =
      key_from_hex("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  const auto nonce = nonce_from_hex("000000000000004a00000000");
  const std::string plaintext =
      "Ladies and Gentlemen of the class of '99: If I could offer you "
      "only one tip for the future, sunscreen would be it.";
  const auto ct = chacha20_xor(
      key, nonce, {reinterpret_cast<const std::uint8_t*>(plaintext.data()), plaintext.size()}, 1);
  EXPECT_EQ(to_hex(ct),
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b"
            "f91b65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d8"
            "07ca0dbf500d6a6156a38e088a22b65e52bc514d16ccf806818ce91ab7793736"
            "5af90bbf74a35be6b40b8eedf2785e42874d");
}

TEST(ChaCha20, EncryptDecryptRoundtrip) {
  SymmetricKey key{};
  key[0] = 7;
  Nonce nonce{};
  nonce[11] = 3;
  const std::vector<std::uint8_t> plain = {0, 1, 2, 3, 4, 5, 250, 251, 252};
  const auto ct = chacha20_xor(key, nonce, plain);
  EXPECT_NE(ct, plain);
  EXPECT_EQ(chacha20_xor(key, nonce, ct), plain);
}

TEST(ChaCha20, EmptyInput) {
  SymmetricKey key{};
  Nonce nonce{};
  EXPECT_TRUE(chacha20_xor(key, nonce, {}).empty());
}

TEST(ChaCha20, MultiBlockLengths) {
  SymmetricKey key{};
  key[31] = 1;
  Nonce nonce{};
  for (const std::size_t len : {1UL, 63UL, 64UL, 65UL, 128UL, 200UL}) {
    std::vector<std::uint8_t> plain(len, 0x5a);
    const auto ct = chacha20_xor(key, nonce, plain);
    ASSERT_EQ(ct.size(), len);
    EXPECT_EQ(chacha20_xor(key, nonce, ct), plain);
  }
}

TEST(ChaCha20, KeyAndNonceSensitivity) {
  SymmetricKey k1{};
  SymmetricKey k2{};
  k2[0] = 1;
  Nonce n1{};
  Nonce n2{};
  n2[0] = 1;
  const std::vector<std::uint8_t> plain(32, 0);
  EXPECT_NE(chacha20_xor(k1, n1, plain), chacha20_xor(k2, n1, plain));
  EXPECT_NE(chacha20_xor(k1, n1, plain), chacha20_xor(k1, n2, plain));
}

TEST(ChaCha20, CounterOffsetsKeystream) {
  SymmetricKey key{};
  Nonce nonce{};
  const std::vector<std::uint8_t> plain(128, 0);
  const auto c0 = chacha20_xor(key, nonce, plain, 0);
  const auto c1 = chacha20_xor(key, nonce, plain, 1);
  // Stream at counter 1 is the tail of the stream at counter 0.
  EXPECT_TRUE(std::equal(c0.begin() + 64, c0.end(), c1.begin()));
}

}  // namespace
}  // namespace decloud::crypto

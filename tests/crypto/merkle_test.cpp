#include "crypto/merkle.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/ensure.hpp"

namespace decloud::crypto {
namespace {

std::vector<Digest> make_leaves(std::size_t n) {
  std::vector<Digest> leaves;
  for (std::size_t i = 0; i < n; ++i) leaves.push_back(Sha256::hash("leaf" + std::to_string(i)));
  return leaves;
}

TEST(Merkle, EmptyTreeHasZeroRoot) {
  MerkleTree tree({});
  EXPECT_EQ(tree.root(), Digest{});
  EXPECT_EQ(tree.leaf_count(), 0u);
}

TEST(Merkle, SingleLeafRootIsLeaf) {
  const auto leaves = make_leaves(1);
  MerkleTree tree(leaves);
  EXPECT_EQ(tree.root(), leaves[0]);
  EXPECT_TRUE(MerkleTree::verify(leaves[0], tree.prove(0), tree.root()));
}

TEST(Merkle, ParentIsDomainSeparatedFromLeafHash) {
  // An internal node must never collide with SHA-256 of concatenated
  // children (second-preimage style mischief).
  const Digest a = Sha256::hash("a");
  const Digest b = Sha256::hash("b");
  std::vector<std::uint8_t> cat(a.begin(), a.end());
  cat.insert(cat.end(), b.begin(), b.end());
  EXPECT_NE(merkle_parent(a, b), Sha256::hash({cat.data(), cat.size()}));
}

TEST(Merkle, OrderMatters) {
  const Digest a = Sha256::hash("a");
  const Digest b = Sha256::hash("b");
  EXPECT_NE(merkle_parent(a, b), merkle_parent(b, a));
}

class MerkleProofTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MerkleProofTest, AllProofsVerify) {
  const std::size_t n = GetParam();
  const auto leaves = make_leaves(n);
  MerkleTree tree(leaves);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_TRUE(MerkleTree::verify(leaves[i], tree.prove(i), tree.root())) << "leaf " << i;
  }
}

TEST_P(MerkleProofTest, WrongLeafFailsVerification) {
  const std::size_t n = GetParam();
  const auto leaves = make_leaves(n);
  MerkleTree tree(leaves);
  const Digest forged = Sha256::hash("forged");
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_FALSE(MerkleTree::verify(forged, tree.prove(i), tree.root())) << "leaf " << i;
  }
}

// Odd sizes exercise the duplicate-last-node rule; powers of two the clean
// case.
INSTANTIATE_TEST_SUITE_P(Sizes, MerkleProofTest,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 33));

TEST(Merkle, RootChangesWithAnyLeaf) {
  auto leaves = make_leaves(8);
  const MerkleTree original(leaves);
  for (std::size_t i = 0; i < leaves.size(); ++i) {
    auto tampered = leaves;
    tampered[i] = Sha256::hash("tampered");
    EXPECT_NE(MerkleTree(tampered).root(), original.root()) << "leaf " << i;
  }
}

TEST(Merkle, RootChangesWithLeafCount) {
  EXPECT_NE(MerkleTree(make_leaves(4)).root(), MerkleTree(make_leaves(5)).root());
}

TEST(Merkle, ProofAgainstWrongRootFails) {
  const auto leaves = make_leaves(6);
  MerkleTree tree(leaves);
  const Digest other_root = MerkleTree(make_leaves(7)).root();
  EXPECT_FALSE(MerkleTree::verify(leaves[2], tree.prove(2), other_root));
}

TEST(Merkle, ProveOutOfRangeThrows) {
  MerkleTree tree(make_leaves(3));
  EXPECT_THROW(tree.prove(3), precondition_error);
}

}  // namespace
}  // namespace decloud::crypto

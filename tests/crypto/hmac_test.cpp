#include "crypto/hmac.hpp"

#include <gtest/gtest.h>

#include <string>

#include "common/hex.hpp"

namespace decloud::crypto {
namespace {

std::vector<std::uint8_t> bytes_of(const std::string& s) {
  return {s.begin(), s.end()};
}

// RFC 4231 test vectors.

TEST(Hmac, Rfc4231Case1) {
  const std::vector<std::uint8_t> key(20, 0x0b);
  const auto msg = bytes_of("Hi There");
  EXPECT_EQ(to_hex(hmac_sha256(key, msg)),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2) {
  const auto key = bytes_of("Jefe");
  const auto msg = bytes_of("what do ya want for nothing?");
  EXPECT_EQ(to_hex(hmac_sha256(key, msg)),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, Rfc4231Case3) {
  const std::vector<std::uint8_t> key(20, 0xaa);
  const std::vector<std::uint8_t> msg(50, 0xdd);
  EXPECT_EQ(to_hex(hmac_sha256(key, msg)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(Hmac, Rfc4231Case6LongKey) {
  // Keys longer than the block size are hashed first.
  const std::vector<std::uint8_t> key(131, 0xaa);
  const auto msg = bytes_of("Test Using Larger Than Block-Size Key - Hash Key First");
  EXPECT_EQ(to_hex(hmac_sha256(key, msg)),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(Hmac, KeySensitivity) {
  const auto msg = bytes_of("msg");
  EXPECT_NE(hmac_sha256(bytes_of("k1"), msg), hmac_sha256(bytes_of("k2"), msg));
}

TEST(DeriveBytes, ProducesRequestedLength) {
  const auto key = bytes_of("key");
  const auto info = bytes_of("info");
  for (const std::size_t n : {0UL, 1UL, 31UL, 32UL, 33UL, 100UL}) {
    EXPECT_EQ(derive_bytes(key, info, n).size(), n);
  }
}

TEST(DeriveBytes, DeterministicAndPrefixStable) {
  const auto key = bytes_of("key");
  const auto info = bytes_of("info");
  const auto a = derive_bytes(key, info, 64);
  const auto b = derive_bytes(key, info, 64);
  EXPECT_EQ(a, b);
  // A shorter request is a prefix of a longer one (counter-block layout).
  const auto c = derive_bytes(key, info, 16);
  EXPECT_TRUE(std::equal(c.begin(), c.end(), a.begin()));
}

TEST(DeriveBytes, InfoSeparatesStreams) {
  const auto key = bytes_of("key");
  EXPECT_NE(derive_bytes(key, bytes_of("a"), 32), derive_bytes(key, bytes_of("b"), 32));
}

}  // namespace
}  // namespace decloud::crypto

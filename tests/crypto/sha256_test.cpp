#include "crypto/sha256.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/ensure.hpp"

namespace decloud::crypto {
namespace {

// FIPS 180-4 / NIST CAVP test vectors.

TEST(Sha256, EmptyInput) {
  EXPECT_EQ(digest_hex(Sha256::hash("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(digest_hex(Sha256::hash("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(digest_hex(Sha256::hash("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, ExactBlockBoundary) {
  // 64 bytes: padding spills into a second block.
  const std::string m(64, 'a');
  EXPECT_EQ(digest_hex(Sha256::hash(m)),
            "ffe054fe7ae0cb6dc65c3af9b61d5209f439851db43d0ba5997337df154668eb");
}

TEST(Sha256, FiftyFiveAndFiftySixBytes) {
  // 55 bytes: length fits the same block; 56: forces an extra block.
  EXPECT_EQ(digest_hex(Sha256::hash(std::string(55, 'a'))),
            "9f4390f8d30c2dd92ec9f095b65e2b9ae9b0a925a5258e241c9f1e910f734318");
  EXPECT_EQ(digest_hex(Sha256::hash(std::string(56, 'a'))),
            "b35439a4ac6f0948b6d6f9e3c6af0f5f590ce20f1bde7090ef7970686ec6738a");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(digest_hex(h.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  const std::string msg = "the quick brown fox jumps over the lazy dog";
  for (std::size_t split = 0; split <= msg.size(); ++split) {
    Sha256 h;
    h.update(msg.substr(0, split));
    h.update(msg.substr(split));
    EXPECT_EQ(h.finish(), Sha256::hash(msg)) << "split at " << split;
  }
}

TEST(Sha256, ByteSpanOverloadAgrees) {
  const std::string msg = "payload";
  const std::vector<std::uint8_t> bytes(msg.begin(), msg.end());
  EXPECT_EQ(Sha256::hash(msg), Sha256::hash({bytes.data(), bytes.size()}));
}

TEST(Sha256, ReuseAfterFinishThrows) {
  Sha256 h;
  h.update("x");
  (void)h.finish();
  EXPECT_THROW(h.update("y"), precondition_error);
  Sha256 h2;
  (void)h2.finish();
  EXPECT_THROW((void)h2.finish(), precondition_error);
}

TEST(Sha256, DistinctInputsDistinctDigests) {
  EXPECT_NE(Sha256::hash("a"), Sha256::hash("b"));
  EXPECT_NE(Sha256::hash(""), Sha256::hash(std::string(1, '\0')));
}

TEST(Sha256, DigestHashFunctorUsesLeadingBytes) {
  const Digest d = Sha256::hash("seed");
  const std::size_t h = DigestHash{}(d);
  std::size_t expect = 0;
  for (int i = 0; i < 8; ++i) expect = (expect << 8) | d[static_cast<std::size_t>(i)];
  EXPECT_EQ(h, expect);
}

}  // namespace
}  // namespace decloud::crypto

#include "crypto/pow.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace decloud::crypto {
namespace {

std::vector<std::uint8_t> header(const std::string& s) { return {s.begin(), s.end()}; }

TEST(MeetsDifficulty, ZeroBitsAlwaysMet) {
  Digest d{};
  d[0] = 0xff;
  EXPECT_TRUE(meets_difficulty(d, 0));
}

TEST(MeetsDifficulty, FullZeroDigestMeets256) {
  EXPECT_TRUE(meets_difficulty(Digest{}, 256));
}

TEST(MeetsDifficulty, ByteBoundaries) {
  Digest d{};
  d[1] = 0x80;  // first 8 bits zero, 9th bit set
  EXPECT_TRUE(meets_difficulty(d, 8));
  EXPECT_FALSE(meets_difficulty(d, 9));
}

TEST(MeetsDifficulty, SubByteBits) {
  Digest d{};
  d[0] = 0x1f;  // 0001'1111: exactly 3 leading zero bits
  EXPECT_TRUE(meets_difficulty(d, 3));
  EXPECT_FALSE(meets_difficulty(d, 4));
}

TEST(Pow, SolveAndVerifyRoundtrip) {
  const auto h = header("block header");
  const auto sol = solve_pow(h, 12);
  ASSERT_TRUE(sol.has_value());
  EXPECT_TRUE(meets_difficulty(sol->digest, 12));
  EXPECT_TRUE(verify_pow(h, 12, *sol));
}

TEST(Pow, VerifyRejectsWrongNonce) {
  const auto h = header("block header");
  auto sol = solve_pow(h, 10);
  ASSERT_TRUE(sol.has_value());
  PowSolution bad = *sol;
  bad.nonce += 1;
  EXPECT_FALSE(verify_pow(h, 10, bad));
}

TEST(Pow, VerifyRejectsWrongHeader) {
  const auto h = header("block header");
  const auto sol = solve_pow(h, 10);
  ASSERT_TRUE(sol.has_value());
  EXPECT_FALSE(verify_pow(header("other header"), 10, *sol));
}

TEST(Pow, VerifyRejectsForgedDigest) {
  const auto h = header("block header");
  auto sol = solve_pow(h, 10);
  ASSERT_TRUE(sol.has_value());
  sol->digest = Digest{};  // claims all-zero digest (meets any difficulty)
  EXPECT_FALSE(verify_pow(h, 10, *sol));
}

TEST(Pow, ExhaustionReturnsNullopt) {
  // 64 difficulty bits in 4 attempts: astronomically unlikely.
  EXPECT_FALSE(solve_pow(header("h"), 64, 0, 4).has_value());
}

TEST(Pow, DeterministicGivenStartNonce) {
  const auto h = header("h");
  const auto a = solve_pow(h, 8);
  const auto b = solve_pow(h, 8);
  ASSERT_TRUE(a && b);
  EXPECT_EQ(a->nonce, b->nonce);
  EXPECT_EQ(a->digest, b->digest);
}

TEST(Pow, HigherDifficultyNeedsMoreAttempts) {
  const auto h = header("statistics");
  const auto easy = solve_pow(h, 4);
  const auto hard = solve_pow(h, 14);
  ASSERT_TRUE(easy && hard);
  EXPECT_LE(easy->nonce, hard->nonce);
}

}  // namespace
}  // namespace decloud::crypto

#include "crypto/signature.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace decloud::crypto {
namespace {

std::vector<std::uint8_t> bytes_of(const std::string& s) { return {s.begin(), s.end()}; }

TEST(PowMod, BasicIdentities) {
  EXPECT_EQ(pow_mod(2, 0), 1u);
  EXPECT_EQ(pow_mod(2, 1), 2u);
  EXPECT_EQ(pow_mod(2, 10), 1024u);
  EXPECT_EQ(pow_mod(0, 5), 0u);
  EXPECT_EQ(pow_mod(1, UINT64_MAX), 1u);
}

TEST(PowMod, FermatLittleTheorem) {
  // g^(p-1) ≡ 1 (mod p) for the Mersenne prime p = 2^61 − 1.
  EXPECT_EQ(pow_mod(kGenerator, kFieldPrime - 1), 1u);
  EXPECT_EQ(pow_mod(1234567891011ULL, kFieldPrime - 1), 1u);
}

TEST(Signature, SignVerifyRoundtrip) {
  Rng rng(1);
  const KeyPair kp = generate_keypair(rng);
  const auto msg = bytes_of("a sealed bid");
  const Signature sig = sign(kp.priv, msg);
  EXPECT_TRUE(verify(kp.pub, msg, sig));
}

TEST(Signature, WrongMessageFails) {
  Rng rng(2);
  const KeyPair kp = generate_keypair(rng);
  const Signature sig = sign(kp.priv, bytes_of("original"));
  EXPECT_FALSE(verify(kp.pub, bytes_of("tampered"), sig));
  EXPECT_FALSE(verify(kp.pub, bytes_of(""), sig));
}

TEST(Signature, WrongKeyFails) {
  Rng rng(3);
  const KeyPair kp1 = generate_keypair(rng);
  const KeyPair kp2 = generate_keypair(rng);
  const auto msg = bytes_of("msg");
  EXPECT_FALSE(verify(kp2.pub, msg, sign(kp1.priv, msg)));
}

TEST(Signature, TamperedSignatureFails) {
  Rng rng(4);
  const KeyPair kp = generate_keypair(rng);
  const auto msg = bytes_of("msg");
  Signature sig = sign(kp.priv, msg);
  Signature bad_r = sig;
  bad_r.r ^= 1;
  EXPECT_FALSE(verify(kp.pub, msg, bad_r));
  Signature bad_s = sig;
  bad_s.s += 1;
  EXPECT_FALSE(verify(kp.pub, msg, bad_s));
}

TEST(Signature, DegenerateInputsRejected) {
  Rng rng(5);
  const KeyPair kp = generate_keypair(rng);
  const auto msg = bytes_of("msg");
  Signature sig = sign(kp.priv, msg);
  sig.r = 0;
  EXPECT_FALSE(verify(kp.pub, msg, sig));
  sig.r = kFieldPrime;
  EXPECT_FALSE(verify(kp.pub, msg, sig));
  PublicKey zero_key{.y = 0};
  EXPECT_FALSE(verify(zero_key, msg, sign(kp.priv, msg)));
}

TEST(Signature, SigningIsDeterministic) {
  // RFC 6979-style derived nonce: identical (key, message) → identical
  // signature, different messages → different nonces.
  Rng rng(6);
  const KeyPair kp = generate_keypair(rng);
  const auto m1 = bytes_of("m1");
  const auto m2 = bytes_of("m2");
  EXPECT_EQ(sign(kp.priv, m1), sign(kp.priv, m1));
  EXPECT_NE(sign(kp.priv, m1).r, sign(kp.priv, m2).r);
}

TEST(Signature, FingerprintIsStablePerKey) {
  Rng rng(7);
  const KeyPair a = generate_keypair(rng);
  const KeyPair b = generate_keypair(rng);
  EXPECT_EQ(a.pub.fingerprint(), a.pub.fingerprint());
  EXPECT_NE(a.pub.fingerprint(), b.pub.fingerprint());
}

class SignatureSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SignatureSweep, RandomKeypairsRoundtrip) {
  Rng rng(GetParam());
  for (int i = 0; i < 10; ++i) {
    const KeyPair kp = generate_keypair(rng);
    ASSERT_GT(kp.priv.x, 0u);
    ASSERT_LT(kp.pub.y, kFieldPrime);
    const auto msg = bytes_of("message-" + std::to_string(i));
    const Signature sig = sign(kp.priv, msg);
    EXPECT_TRUE(verify(kp.pub, msg, sig));
    EXPECT_FALSE(verify(kp.pub, bytes_of("other"), sig));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SignatureSweep, ::testing::Values(11, 22, 33, 44, 55));

}  // namespace
}  // namespace decloud::crypto

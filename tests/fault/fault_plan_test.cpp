#include "fault/fault.hpp"

#include <gtest/gtest.h>

#include "common/ensure.hpp"
#include "fault/injector.hpp"

namespace decloud::fault {
namespace {

TEST(FaultPlan, KindNamesRoundTrip) {
  for (std::size_t k = 0; k < kNumFaultKinds; ++k) {
    const auto kind = static_cast<FaultKind>(k);
    const auto parsed = parse_kind(to_string(kind));
    ASSERT_TRUE(parsed.has_value()) << to_string(kind);
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(parse_kind("no_such_fault").has_value());
  EXPECT_FALSE(parse_kind("").has_value());
}

TEST(FaultPlan, ParsesFieldsAndDefaults) {
  const FaultPlan plan = FaultPlan::parse(
      "withhold_reveal:p=0.5:rounds=0-9;dishonest_vote:index=1;"
      "delay_message:payload=250:attempts=2");
  ASSERT_EQ(plan.rules.size(), 3u);

  const FaultRule& withhold = plan.rules[0];
  EXPECT_EQ(withhold.kind, FaultKind::kWithholdReveal);
  EXPECT_DOUBLE_EQ(withhold.probability, 0.5);
  EXPECT_EQ(withhold.round_lo, 0u);
  EXPECT_EQ(withhold.round_hi, 9u);
  EXPECT_EQ(withhold.shard_lo, 0u);
  EXPECT_EQ(withhold.shard_hi, UINT64_MAX);  // omitted → everywhere

  const FaultRule& vote = plan.rules[1];
  EXPECT_EQ(vote.kind, FaultKind::kDishonestVote);
  EXPECT_DOUBLE_EQ(vote.probability, 1.0);  // omitted → always
  EXPECT_EQ(vote.index_lo, 1u);
  EXPECT_EQ(vote.index_hi, 1u);  // single value → point window

  const FaultRule& delay = plan.rules[2];
  EXPECT_EQ(delay.kind, FaultKind::kDelayMessage);
  EXPECT_EQ(delay.payload, 250u);
  EXPECT_EQ(delay.attempt_lo, 2u);
  EXPECT_EQ(delay.attempt_hi, 2u);
}

TEST(FaultPlan, EmptySpecIsTheEmptyPlan) {
  EXPECT_TRUE(FaultPlan::parse("").empty());
  EXPECT_TRUE(FaultPlan::parse("  ;; ").empty());
  EXPECT_EQ(FaultPlan::parse("").canonical(), "");
}

TEST(FaultPlan, CanonicalRoundTrips) {
  const FaultPlan plan = FaultPlan::parse(
      "withhold_reveal:p=0.25:rounds=1-3:index=0-2;"
      "reject_ingest:shards=1;delay_message:payload=100");
  const std::string canon = plan.canonical();
  const FaultPlan replay = FaultPlan::parse(canon);
  EXPECT_EQ(replay.canonical(), canon);  // fixed point
  ASSERT_EQ(replay.rules.size(), plan.rules.size());
  EXPECT_DOUBLE_EQ(replay.rules[0].probability, 0.25);
  EXPECT_EQ(replay.rules[0].round_hi, 3u);
  EXPECT_EQ(replay.rules[1].shard_lo, 1u);
  EXPECT_EQ(replay.rules[2].payload, 100u);
}

TEST(FaultPlan, RejectsMalformedSpecs) {
  EXPECT_THROW(FaultPlan::parse("no_such_fault"), precondition_error);
  EXPECT_THROW(FaultPlan::parse("withhold_reveal:p=1.5"), precondition_error);
  EXPECT_THROW(FaultPlan::parse("withhold_reveal:p=-0.1"), precondition_error);
  EXPECT_THROW(FaultPlan::parse("withhold_reveal:p=nope"), precondition_error);
  EXPECT_THROW(FaultPlan::parse("withhold_reveal:rounds=5-2"), precondition_error);
  EXPECT_THROW(FaultPlan::parse("withhold_reveal:frequency=2"), precondition_error);
  EXPECT_THROW(FaultPlan::parse("withhold_reveal:rounds"), precondition_error);
  EXPECT_THROW(FaultPlan::parse("withhold_reveal:index=1x"), precondition_error);
}

TEST(FaultRule, WindowsAreInclusiveOnEveryCoordinate) {
  FaultRule rule;
  rule.kind = FaultKind::kRejectIngest;
  rule.round_lo = 2;
  rule.round_hi = 4;
  rule.shard_lo = 1;
  rule.shard_hi = 1;
  rule.index_lo = 0;
  rule.index_hi = 10;
  rule.attempt_lo = 0;
  rule.attempt_hi = 0;
  EXPECT_TRUE(rule.matches(FaultKind::kRejectIngest, {2, 1, 0, 0}));
  EXPECT_TRUE(rule.matches(FaultKind::kRejectIngest, {4, 1, 10, 0}));
  EXPECT_FALSE(rule.matches(FaultKind::kRejectIngest, {5, 1, 0, 0}));   // round past hi
  EXPECT_FALSE(rule.matches(FaultKind::kRejectIngest, {1, 1, 0, 0}));   // round below lo
  EXPECT_FALSE(rule.matches(FaultKind::kRejectIngest, {3, 0, 0, 0}));   // wrong shard
  EXPECT_FALSE(rule.matches(FaultKind::kRejectIngest, {3, 1, 11, 0}));  // index past hi
  EXPECT_FALSE(rule.matches(FaultKind::kRejectIngest, {3, 1, 0, 1}));   // attempt past hi
  EXPECT_FALSE(rule.matches(FaultKind::kDropMessage, {3, 1, 0, 0}));    // wrong kind
}

TEST(FaultInjector, NullInjectorNeverFires) {
  const FaultInjector null;
  EXPECT_FALSE(null.active());
  EXPECT_FALSE(null.fires(FaultKind::kWithholdReveal, {}));
  EXPECT_EQ(null.payload(FaultKind::kDelayMessage, {}), 0u);
}

TEST(FaultInjector, CertainRuleFiresExactlyInsideItsWindow) {
  const FaultInjector injector(FaultPlan::parse("dishonest_vote:index=1:rounds=0-5"), 7);
  EXPECT_TRUE(injector.active());
  for (std::uint64_t round = 0; round <= 5; ++round) {
    EXPECT_TRUE(injector.fires(FaultKind::kDishonestVote, {round, 0, 1, 0}));
    EXPECT_FALSE(injector.fires(FaultKind::kDishonestVote, {round, 0, 0, 0}));
    EXPECT_FALSE(injector.fires(FaultKind::kDishonestVote, {round, 0, 2, 0}));
  }
  EXPECT_FALSE(injector.fires(FaultKind::kDishonestVote, {6, 0, 1, 0}));
  EXPECT_FALSE(injector.fires(FaultKind::kWithholdReveal, {0, 0, 1, 0}));
}

TEST(FaultInjector, ZeroProbabilityNeverFires) {
  const FaultInjector injector(FaultPlan::parse("drop_message:p=0"), 1);
  EXPECT_TRUE(injector.active());  // a plan exists, it just never lands
  for (std::uint64_t i = 0; i < 500; ++i) {
    EXPECT_FALSE(injector.fires(FaultKind::kDropMessage, {0, 0, i, 0}));
  }
}

TEST(FaultInjector, ProbabilityControlsTheFiringRate) {
  const FaultInjector injector(FaultPlan::parse("drop_message:p=0.3"), 11);
  std::size_t fired = 0;
  constexpr std::uint64_t kSites = 4000;
  for (std::uint64_t i = 0; i < kSites; ++i) {
    if (injector.fires(FaultKind::kDropMessage, {0, 0, i, 0})) ++fired;
  }
  EXPECT_GT(fired, kSites / 5);      // well above 0
  EXPECT_LT(fired, 2 * kSites / 5);  // well below 1
}

TEST(FaultInjector, DecisionsArePureFunctionsOfSeedAndSite) {
  const FaultPlan plan = FaultPlan::parse("withhold_reveal:p=0.5;reject_ingest:p=0.5");
  const FaultInjector a(plan, 42);
  const FaultInjector b(plan, 42);
  const FaultInjector other_seed(plan, 43);
  std::size_t divergences = 0;
  for (std::uint64_t round = 0; round < 8; ++round) {
    for (std::uint64_t shard = 0; shard < 4; ++shard) {
      for (std::uint64_t index = 0; index < 16; ++index) {
        const FaultSite site{round, shard, index, 0};
        for (const FaultKind kind : {FaultKind::kWithholdReveal, FaultKind::kRejectIngest}) {
          EXPECT_EQ(a.fires(kind, site), b.fires(kind, site));
          if (a.fires(kind, site) != other_seed.fires(kind, site)) ++divergences;
        }
      }
    }
  }
  EXPECT_GT(divergences, 0u);  // the seed is load-bearing
}

TEST(FaultInjector, FirstMatchingRuleSuppliesThePayload) {
  // Two delay rules: a window-limited one first, a catch-all second.  Rule
  // order is part of the schedule's identity.
  const FaultInjector injector(
      FaultPlan::parse("delay_message:payload=100:index=0-4;delay_message:payload=200"), 3);
  EXPECT_EQ(injector.payload(FaultKind::kDelayMessage, {0, 0, 2, 0}), 100u);
  EXPECT_EQ(injector.payload(FaultKind::kDelayMessage, {0, 0, 9, 0}), 200u);
  EXPECT_EQ(injector.payload(FaultKind::kDropMessage, {0, 0, 2, 0}), 0u);  // no rule
}

}  // namespace
}  // namespace decloud::fault

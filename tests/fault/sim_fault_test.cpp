// Injected network faults on the simulated overlay: deterministic drops
// and payload-driven delays, and their interaction with a full protocol
// round.
#include "sim/network.hpp"

#include <gtest/gtest.h>

#include "fault/injector.hpp"
#include "sim/simulation.hpp"
#include "trace/workload.hpp"

namespace decloud::sim {
namespace {

Message probe() { return VoteMsg{.height = 1, .accept = true, .voter = NodeId(0)}; }

TEST(NetworkFault, DropFaultEatsTheMessageAndCounts) {
  const fault::FaultInjector injector(fault::FaultPlan::parse("drop_message:index=0"), 3);
  Rng rng(1);
  EventQueue queue;
  Network net(2, LatencyConfig{.base_ms = 10, .jitter_ms = 0}, queue, rng);
  net.set_fault_injector(&injector);
  int delivered = 0;
  net.attach(NodeId(0), [](NodeId, const Message&) {});
  net.attach(NodeId(1), [&](NodeId, const Message&) { ++delivered; });

  net.send(NodeId(0), NodeId(1), probe());  // message 0: dropped by the plan
  net.send(NodeId(0), NodeId(1), probe());  // message 1: delivered
  queue.run();

  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(net.messages_sent(), 2u);
  EXPECT_EQ(net.messages_dropped(), 1u);
  EXPECT_EQ(net.messages_fault_dropped(), 1u);
}

TEST(NetworkFault, DelayFaultAddsThePayloadToLinkLatency) {
  const fault::FaultInjector injector(
      fault::FaultPlan::parse("delay_message:payload=500:index=0"), 3);
  Rng rng(1);
  EventQueue queue;
  Network net(2, LatencyConfig{.base_ms = 10, .jitter_ms = 0}, queue, rng);
  net.set_fault_injector(&injector);
  net.attach(NodeId(0), [](NodeId, const Message&) {});
  std::vector<SimTime> deliveries;
  net.attach(NodeId(1), [&](NodeId, const Message&) { deliveries.push_back(queue.now()); });

  net.send(NodeId(0), NodeId(1), probe());  // message 0: +500 ms
  net.send(NodeId(0), NodeId(1), probe());  // message 1: nominal latency
  queue.run();

  const SimTime link = net.link_latency(NodeId(0), NodeId(1));
  ASSERT_EQ(deliveries.size(), 2u);
  // The event queue delivers in timestamp order: the delayed message 0
  // arrives after the prompt message 1.
  EXPECT_EQ(deliveries[0], link);
  EXPECT_EQ(deliveries[1], link + 500);
  EXPECT_EQ(net.messages_fault_delayed(), 1u);
  EXPECT_EQ(net.messages_dropped(), 0u);
}

void inject(Simulation& sim, std::size_t requests, std::size_t offers, std::uint64_t seed) {
  trace::WorkloadConfig wc;
  wc.num_requests = requests;
  wc.num_offers = offers;
  Rng rng(seed);
  const auto snap = trace::make_workload(wc, auction::AuctionConfig{}, rng);
  for (std::size_t i = 0; i < snap.requests.size(); ++i) {
    sim.participant(i % sim.num_participants()).enqueue_request(snap.requests[i]);
  }
  for (std::size_t i = 0; i < snap.offers.size(); ++i) {
    sim.participant(i % sim.num_participants()).enqueue_offer(snap.offers[i]);
  }
}

TEST(SimulationFault, InjectedDropsReplayIdenticallyAndNeverFork) {
  const fault::FaultPlan plan = fault::FaultPlan::parse("drop_message:p=0.15");
  const auto run = [&plan](const fault::FaultInjector* injector) {
    SimulationConfig sc;
    sc.num_miners = 3;
    sc.num_participants = 4;
    sc.consensus.difficulty_bits = 8;
    sc.seed = 5;
    sc.fault = injector;
    Simulation sim(sc);
    inject(sim, 8, 4, 5);
    const RoundStats stats = sim.run_round(0);

    // Whatever the plan did, no two miners may disagree at equal height.
    for (std::size_t a = 0; a < 3; ++a) {
      for (std::size_t b = a + 1; b < 3; ++b) {
        const auto& ca = sim.miner(a).chain();
        const auto& cb = sim.miner(b).chain();
        const std::uint64_t h = std::min(ca.height(), cb.height());
        for (std::uint64_t i = 0; i < h; ++i) {
          EXPECT_EQ(ca.blocks()[i].preamble.hash(), cb.blocks()[i].preamble.hash());
        }
      }
    }
    struct Result {
      bool accepted;
      std::size_t messages;
      std::size_t dropped;
      std::size_t fault_dropped;
    };
    return Result{stats.accepted, stats.messages, sim.network().messages_dropped(),
                  sim.network().messages_fault_dropped()};
  };

  const fault::FaultInjector chaos(plan, 17);
  const fault::FaultInjector replay(plan, 17);
  const auto first = run(&chaos);
  const auto second = run(&replay);
  EXPECT_EQ(first.accepted, second.accepted);
  EXPECT_EQ(first.messages, second.messages);
  EXPECT_EQ(first.dropped, second.dropped);
  EXPECT_EQ(first.fault_dropped, second.fault_dropped);
  EXPECT_GT(first.fault_dropped, 0u);  // the plan engaged
  // Without the loss model every drop is an injected one.
  EXPECT_EQ(first.dropped, first.fault_dropped);

  const auto clean = run(nullptr);
  EXPECT_EQ(clean.fault_dropped, 0u);
  EXPECT_EQ(clean.dropped, 0u);  // the default overlay stays reliable
}

}  // namespace
}  // namespace decloud::sim

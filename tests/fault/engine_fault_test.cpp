// Engine-level chaos: injected ingest rejections, the deterministic
// retry-with-backoff that recovers them, and the byte-determinism contract
// under an active fault plan across scheduler thread counts.
#include "engine/engine.hpp"

#include <gtest/gtest.h>

#include <string>

#include "common/thread_pool.hpp"
#include "engine/driver.hpp"
#include "engine/epoch_scheduler.hpp"

namespace decloud::engine {
namespace {

EngineConfig small_engine(std::size_t shards) {
  EngineConfig config;
  config.router.num_shards = shards;
  config.router.x0 = 0.0;
  config.router.x1 = 100.0;
  config.router.y0 = 0.0;
  config.router.y1 = 100.0;
  config.market.consensus.difficulty_bits = 8;
  config.market.num_verifiers = 1;
  config.market.consensus.auction.threads = 1;
  return config;
}

auction::Request make_request(std::uint64_t id, Money bid, double x, double y) {
  auction::Request r;
  r.id = RequestId(id);
  r.client = ClientId(id);
  r.submitted = static_cast<Time>(id);
  r.resources.set(auction::ResourceSchema::kCpu, 1.0);
  r.window_start = 0;
  r.window_end = 1'000'000;
  r.duration = 3600;
  r.bid = bid;
  r.location = auction::Location{x, y};
  return r;
}

auction::Offer make_offer(std::uint64_t id, Money bid, double x, double y) {
  auction::Offer o;
  o.id = OfferId(id);
  o.provider = ProviderId(id);
  o.submitted = static_cast<Time>(id);
  o.resources.set(auction::ResourceSchema::kCpu, 4.0);
  o.window_start = 0;
  o.window_end = 2'000'000;
  o.bid = bid;
  o.location = auction::Location{x, y};
  return o;
}

TEST(EngineFault, InjectedRejectionIsFinalWithoutARetryBudget) {
  EngineConfig config = small_engine(2);
  config.fault_plan = fault::FaultPlan::parse("reject_ingest");
  MarketEngine engine(config);

  const EngineAdmission refused = engine.submit(make_request(1, 1.0, 5.0, 5.0));
  EXPECT_FALSE(refused.admitted());
  EXPECT_EQ(refused.reason, EngineAdmission::Reason::kBackpressure);
  EXPECT_EQ(engine.report().bids_rejected_backpressure, 1u);
  EXPECT_EQ(engine.queued_bids(), 0u);
}

TEST(EngineFault, DeferredBidsFlushAndSucceedAfterBackoff) {
  EngineConfig config = small_engine(2);
  // The fault refuses first submissions only (attempt 0 = the producer
  // call); the epoch-1 retry goes through.
  config.fault_plan = fault::FaultPlan::parse("reject_ingest:attempts=0");
  config.retry.max_attempts = 1;
  MarketEngine engine(config);

  const EngineAdmission deferred = engine.submit(make_request(1, 5.0, 5.0, 5.0));
  EXPECT_EQ(deferred.status, Admission::kQueued);
  EXPECT_EQ(deferred.reason, EngineAdmission::Reason::kDeferred);
  EXPECT_TRUE(deferred.admitted());  // still in flight, not lost
  const EngineAdmission offer = engine.submit(make_offer(1, 0.1, 5.5, 5.5));
  EXPECT_EQ(offer.reason, EngineAdmission::Reason::kDeferred);
  // Spare offer so the retried pair survives trade reduction.
  const EngineAdmission spare = engine.submit(make_offer(2, 0.2, 5.2, 5.2));
  EXPECT_EQ(spare.reason, EngineAdmission::Reason::kDeferred);
  EXPECT_EQ(engine.queued_bids(), 3u);  // parked in the deferral buffer

  EpochScheduler scheduler(engine, 1);
  scheduler.run(/*max_epochs=*/8);

  const EngineReport report = scheduler.report();
  EXPECT_EQ(report.bids_retry_scheduled, 3u);
  EXPECT_EQ(report.bids_retry_succeeded, 3u);
  EXPECT_EQ(report.bids_retry_dropped, 0u);
  EXPECT_EQ(report.total.requests_submitted, 1u);
  EXPECT_EQ(report.total.offers_submitted, 2u);
  EXPECT_EQ(report.total.requests_allocated, 1u);  // the pair still matched
  EXPECT_EQ(report.bids_rejected_backpressure, 0u);
}

TEST(EngineFault, RetryBudgetExhaustionDropsTheBid) {
  EngineConfig config = small_engine(2);
  config.fault_plan = fault::FaultPlan::parse("reject_ingest");  // refuses every attempt
  config.retry.max_attempts = 2;
  MarketEngine engine(config);

  const EngineAdmission deferred = engine.submit(make_request(1, 5.0, 5.0, 5.0));
  EXPECT_EQ(deferred.reason, EngineAdmission::Reason::kDeferred);
  const std::size_t shard = deferred.shard;

  EpochScheduler scheduler(engine, 1);
  scheduler.run(/*max_epochs=*/16);

  const EngineReport report = scheduler.report();
  // Initial deferral + one re-deferral, then the budget runs out.
  EXPECT_EQ(report.bids_retry_scheduled, 2u);
  EXPECT_EQ(report.bids_retry_succeeded, 0u);
  EXPECT_EQ(report.bids_retry_dropped, 1u);
  EXPECT_EQ(report.shards[shard].bids_retry_dropped, 1u);
  EXPECT_EQ(report.total.requests_submitted, 0u);  // never reached a market
  EXPECT_EQ(engine.queued_bids(), 0u);             // nothing parked forever
}

TEST(EngineFault, ChaosRunIsByteIdenticalAcrossThreadCounts) {
  const auto config = [] {
    EngineConfig c = small_engine(4);
    c.observability = true;
    c.market.consensus.max_remine_attempts = 1;
    c.retry.max_attempts = 2;
    c.fault_plan = fault::FaultPlan::parse(
        "withhold_reveal:p=0.3;dishonest_vote:p=0.25;deny_agreement:p=0.5;"
        "duplicate_sealed_bid:p=0.2;corrupt_sealed_bid:p=0.1;reject_ingest:p=0.2");
    c.fault_seed = 42;
    return c;
  };
  TraceDriverConfig driver;
  driver.workload.num_requests = 40;
  driver.workload.num_offers = 20;
  driver.located_fraction = 0.8;
  driver.bids_per_epoch = 20;
  driver.seed = 7;

  const std::size_t hw = ThreadPool::default_workers();
  std::string summary_baseline;
  std::string metrics_baseline;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, hw}) {
    MarketEngine engine(config());
    EpochScheduler scheduler(engine, threads);
    const DriveOutcome outcome = drive_trace(engine, scheduler, driver);
    const std::string summary = outcome.report.summary_json();
    const std::string metrics = scheduler.metrics_json();
    if (summary_baseline.empty()) {
      summary_baseline = summary;
      metrics_baseline = metrics;
      // The chaos plan really engaged: faults show up in the report.
      EXPECT_NE(metrics.find("fault."), std::string::npos);
      ASSERT_GT(outcome.report.total.requests_allocated, 0u);
    } else {
      EXPECT_EQ(summary, summary_baseline) << "summary divergence at threads=" << threads;
      EXPECT_EQ(metrics, metrics_baseline) << "metrics divergence at threads=" << threads;
    }
  }
}

TEST(EngineFault, SameChaosPlanReproducesAndSeedChangesOutcome) {
  const auto run = [](std::uint64_t fault_seed) {
    EngineConfig c = small_engine(2);
    c.market.consensus.max_remine_attempts = 1;
    c.fault_plan = fault::FaultPlan::parse("withhold_reveal:p=0.5;dishonest_vote:p=0.5");
    c.fault_seed = fault_seed;
    MarketEngine engine(c);
    EpochScheduler scheduler(engine, 1);
    TraceDriverConfig driver;
    driver.workload.num_requests = 24;
    driver.workload.num_offers = 12;
    driver.bids_per_epoch = 12;
    driver.seed = 9;
    return drive_trace(engine, scheduler, driver).report.summary_json();
  };
  const std::string a = run(1);
  EXPECT_EQ(run(1), a);
  EXPECT_NE(run(2), a);  // the fault seed is part of the experiment identity
}

}  // namespace
}  // namespace decloud::engine

// Byzantine rounds through the in-process protocol: withheld reveals,
// dishonest votes, corrupted allocation bodies, tampered sealed bids.
// Every scenario must degrade gracefully — bids excluded, reputations
// debited, quorum or bounded re-mine deciding the block — and replay
// byte-identically under the same plan and seed.
#include "ledger/protocol.hpp"

#include <gtest/gtest.h>

#include "auction/verify.hpp"
#include "common/ensure.hpp"
#include "common/rng.hpp"
#include "fault/injector.hpp"

namespace decloud::ledger {
namespace {

constexpr unsigned kDifficulty = 8;

ConsensusParams params() { return {.difficulty_bits = kDifficulty}; }

auction::Request simple_request(std::uint64_t id, Money bid) {
  auction::Request r;
  r.id = RequestId(id);
  r.client = ClientId(id);
  r.submitted = static_cast<Time>(id);
  r.resources.set(auction::ResourceSchema::kCpu, 1.0);
  r.window_end = 7200;
  r.duration = 3600;
  r.bid = bid;
  return r;
}

auction::Offer simple_offer(std::uint64_t id, Money bid) {
  auction::Offer o;
  o.id = OfferId(id);
  o.provider = ProviderId(id);
  o.submitted = static_cast<Time>(id);
  o.resources.set(auction::ResourceSchema::kCpu, 4.0);
  o.window_end = 86400;
  o.bid = bid;
  return o;
}

TEST(RequiredAccepts, CeilsTheQuorumWithoutFloatDrift) {
  EXPECT_EQ(LedgerProtocol::required_accepts(1.0, 3), 3u);
  EXPECT_EQ(LedgerProtocol::required_accepts(2.0 / 3.0, 3), 2u);  // exact third, no round-up
  EXPECT_EQ(LedgerProtocol::required_accepts(0.5, 4), 2u);
  EXPECT_EQ(LedgerProtocol::required_accepts(0.51, 4), 3u);
  EXPECT_EQ(LedgerProtocol::required_accepts(0.01, 5), 1u);
  EXPECT_EQ(LedgerProtocol::required_accepts(0.7, 0), 0u);  // producer-only mode
  EXPECT_THROW(LedgerProtocol::required_accepts(0.0, 3), precondition_error);
  EXPECT_THROW(LedgerProtocol::required_accepts(1.5, 3), precondition_error);
}

TEST(ProtocolFault, WithheldRevealExcludesOnlyThatSenderAndDebitsReputation) {
  LedgerProtocol protocol(params());
  const fault::FaultInjector injector(fault::FaultPlan::parse("withhold_reveal:index=1"), 9);
  protocol.set_fault_injector(&injector);

  Rng rng(2);
  Participant online(rng);
  Participant withholder(rng);
  protocol.mempool().submit(online.submit_request(simple_request(1, 5.0), rng));
  protocol.mempool().submit(withholder.submit_request(simple_request(2, 9.0), rng));
  protocol.mempool().submit(online.submit_offer(simple_offer(1, 0.1), rng));
  protocol.mempool().submit(online.submit_offer(simple_offer(2, 0.2), rng));

  const RoundOutcome outcome =
      protocol.run_round({&online, &withholder}, {Miner(params())}, 0);

  ASSERT_TRUE(outcome.block_accepted);
  EXPECT_EQ(outcome.snapshot.requests.size(), 1u);  // withholder's request gone
  EXPECT_EQ(outcome.snapshot.offers.size(), 2u);
  EXPECT_EQ(outcome.fault.reveals_withheld, 1u);
  EXPECT_EQ(outcome.fault.bids_unopened, 1u);
  ASSERT_EQ(outcome.fault.penalized.size(), 1u);
  // One multiplicative withhold_factor hit off the initial score.
  const ReputationConfig reputation;
  EXPECT_DOUBLE_EQ(protocol.contract().reputation().score(outcome.fault.penalized[0]),
                   reputation.initial * reputation.withhold_factor);
  // The withholder never saw a reveal request honored: its wallet still
  // holds the bid for a later round.
  EXPECT_EQ(withholder.pending_bids(), 1u);
  // Whatever did land satisfies the mechanism invariants.
  EXPECT_TRUE(auction::verify_invariants(outcome.snapshot, outcome.result,
                                         protocol.params().auction)
                  .ok());
}

TEST(ProtocolFault, QuorumToleratesADishonestMinority) {
  ConsensusParams p = params();
  p.quorum = 2.0 / 3.0;
  LedgerProtocol protocol(p);
  const fault::FaultInjector injector(fault::FaultPlan::parse("dishonest_vote:index=1"), 5);
  protocol.set_fault_injector(&injector);

  Rng rng(3);
  Participant wallet(rng);
  protocol.mempool().submit(wallet.submit_request(simple_request(1, 5.0), rng));
  protocol.mempool().submit(wallet.submit_offer(simple_offer(1, 0.1), rng));

  const std::vector<Miner> verifiers(3, Miner(p));
  const RoundOutcome outcome = protocol.run_round({&wallet}, verifiers, 0);

  EXPECT_TRUE(outcome.block_accepted);  // 2 of 3 honest accepts reach quorum
  EXPECT_EQ(outcome.verifier_votes, (std::vector<bool>{true, false, true}));
  EXPECT_EQ(outcome.fault.dishonest_votes, 1u);
  EXPECT_FALSE(outcome.fault.producer_penalized);
  EXPECT_EQ(protocol.chain().height(), 1u);
}

TEST(ProtocolFault, UnanimityRejectsOnOneDishonestVote) {
  // Default quorum 1.0 (legacy unanimity) with no re-mine budget: a single
  // inverted vote sinks the block and the producer eats the penalty.
  LedgerProtocol protocol(params());
  const fault::FaultInjector injector(fault::FaultPlan::parse("dishonest_vote:index=0"), 5);
  protocol.set_fault_injector(&injector);

  Rng rng(4);
  Participant wallet(rng);
  protocol.mempool().submit(wallet.submit_request(simple_request(1, 5.0), rng));

  const std::vector<Miner> verifiers(2, Miner(params()));
  const RoundOutcome outcome = protocol.run_round({&wallet}, verifiers, 0);

  EXPECT_FALSE(outcome.block_accepted);
  EXPECT_EQ(outcome.verifier_votes, (std::vector<bool>{false, true}));
  EXPECT_TRUE(outcome.fault.producer_penalized);
  EXPECT_EQ(outcome.fault.remine_attempts, 0u);
  EXPECT_EQ(protocol.producer_penalties(), 1u);
  EXPECT_EQ(protocol.chain().height(), 0u);
}

TEST(ProtocolFault, CorruptedAllocationIsReminedWithinBudget) {
  ConsensusParams p = params();
  p.max_remine_attempts = 1;
  LedgerProtocol protocol(p);
  // The producer corrupts its suggestion on attempt 0 only; the verifier
  // re-runs the auction, catches the mismatch, and forces a clean re-mine.
  const fault::FaultInjector injector(
      fault::FaultPlan::parse("corrupt_allocation:attempts=0"), 13);
  protocol.set_fault_injector(&injector);

  Rng rng(5);
  Participant wallet(rng);
  protocol.mempool().submit(wallet.submit_request(simple_request(1, 5.0), rng));
  // Two offers so the trade survives reduction (spare sets the price).
  protocol.mempool().submit(wallet.submit_offer(simple_offer(1, 0.1), rng));
  protocol.mempool().submit(wallet.submit_offer(simple_offer(2, 0.2), rng));

  const RoundOutcome outcome = protocol.run_round({&wallet}, {Miner(p)}, 0);

  EXPECT_TRUE(outcome.block_accepted);
  EXPECT_TRUE(outcome.fault.allocation_corrupted);
  EXPECT_TRUE(outcome.fault.producer_penalized);
  EXPECT_EQ(outcome.fault.remine_attempts, 1u);
  EXPECT_EQ(outcome.verifier_votes, (std::vector<bool>{true}));  // final attempt
  EXPECT_EQ(protocol.producer_penalties(), 1u);
  EXPECT_EQ(protocol.chain().height(), 1u);
  EXPECT_FALSE(outcome.result.matches.empty());
}

TEST(ProtocolFault, RemineExcludesTheWithheldBids) {
  ConsensusParams p = params();
  p.max_remine_attempts = 1;
  LedgerProtocol protocol(p);
  // Attempt 0 is sunk by a dishonest vote while participant 1 withholds;
  // the retry mines a smaller preamble without the unopened bid, and the
  // withholder is charged exactly once for the whole round.
  const fault::FaultInjector injector(
      fault::FaultPlan::parse("withhold_reveal:index=1;dishonest_vote:attempts=0"), 21);
  protocol.set_fault_injector(&injector);

  Rng rng(6);
  Participant online(rng);
  Participant withholder(rng);
  protocol.mempool().submit(online.submit_request(simple_request(1, 5.0), rng));
  protocol.mempool().submit(withholder.submit_request(simple_request(2, 9.0), rng));
  protocol.mempool().submit(online.submit_offer(simple_offer(1, 0.1), rng));

  const RoundOutcome outcome =
      protocol.run_round({&online, &withholder}, {Miner(p)}, 0);

  ASSERT_TRUE(outcome.block_accepted);
  EXPECT_EQ(outcome.fault.remine_attempts, 1u);
  EXPECT_EQ(outcome.block.preamble.sealed_bids.size(), 2u);  // withheld bid excluded
  EXPECT_EQ(outcome.fault.bids_unopened, 0u);                // nothing unopened on the retry
  ASSERT_EQ(outcome.fault.penalized.size(), 1u);             // charged once, not per attempt
  EXPECT_EQ(outcome.snapshot.requests.size(), 1u);
  EXPECT_EQ(protocol.chain().height(), 1u);
}

TEST(ProtocolFault, TamperedSealedBidIsDroppedBeforeMining) {
  LedgerProtocol protocol(params());
  Rng rng(7);
  Participant wallet(rng);
  SealedBid tampered = wallet.submit_request(simple_request(1, 9.0), rng);
  tampered.ciphertext.front() ^= 0xFF;  // breaks the signature over the bid
  protocol.mempool().submit(std::move(tampered));
  protocol.mempool().submit(wallet.submit_request(simple_request(2, 5.0), rng));
  protocol.mempool().submit(wallet.submit_offer(simple_offer(1, 0.1), rng));

  const RoundOutcome outcome = protocol.run_round({&wallet}, {Miner(params())}, 0);

  ASSERT_TRUE(outcome.block_accepted);
  EXPECT_EQ(outcome.fault.bids_invalid_dropped, 1u);
  EXPECT_EQ(outcome.block.preamble.sealed_bids.size(), 2u);
  EXPECT_EQ(outcome.snapshot.requests.size(), 1u);  // only the honest request
}

TEST(ProtocolFault, ChaosRoundReplaysByteIdentically) {
  const fault::FaultPlan plan = fault::FaultPlan::parse(
      "withhold_reveal:p=0.5;dishonest_vote:p=0.4;corrupt_allocation:p=0.3:attempts=0");

  const auto transcript_with = [&](const fault::FaultInjector* injector) {
    ConsensusParams p = params();
    p.quorum = 2.0 / 3.0;
    p.max_remine_attempts = 2;
    LedgerProtocol protocol(p);
    protocol.set_fault_injector(injector);

    Rng rng(8);
    Participant clients(rng);
    Participant providers(rng);
    std::string transcript;
    for (std::uint64_t round = 0; round < 3; ++round) {
      for (std::uint64_t i = 0; i < 3; ++i) {
        protocol.mempool().submit(clients.submit_request(
            simple_request(round * 10 + i, 2.0 + static_cast<double>(i)), rng));
      }
      protocol.mempool().submit(
          providers.submit_offer(simple_offer(round * 10 + 1, 0.2), rng));
      const RoundOutcome outcome = protocol.run_round(
          {&clients, &providers}, std::vector<Miner>(3, Miner(p)), Time(round * 100));
      transcript += outcome_json(outcome);
      transcript += '\n';
    }
    return transcript;
  };

  const fault::FaultInjector chaos(plan, 77);
  const fault::FaultInjector replay(plan, 77);
  const std::string baseline = transcript_with(&chaos);
  EXPECT_EQ(transcript_with(&replay), baseline);
  // The plan actually bit somewhere, or this test proves nothing.
  EXPECT_NE(transcript_with(nullptr), baseline);
}

TEST(ProtocolFault, OutcomeJsonCarriesTheFaultReport) {
  RoundOutcome outcome;
  outcome.block_accepted = true;
  outcome.verifier_votes = {true, false};
  outcome.fault.reveals_withheld = 2;
  outcome.fault.producer_penalized = true;
  outcome.fault.penalized = {ClientId(42)};
  const std::string json = outcome_json(outcome);
  EXPECT_NE(json.find("\"accepted\":true"), std::string::npos);
  EXPECT_NE(json.find("\"votes\":[1,0]"), std::string::npos);
  EXPECT_NE(json.find("\"reveals_withheld\":2"), std::string::npos);
  EXPECT_NE(json.find("\"producer_penalized\":true"), std::string::npos);
  EXPECT_NE(json.find("\"penalized\":[42]"), std::string::npos);
}

}  // namespace
}  // namespace decloud::ledger
